#include "vmm/hypervisor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/bounds_spec.h"

namespace asman::vmm {

namespace {
std::string key_str(VcpuKey k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%u.%u", k.vm, k.idx);
  return buf;
}
}  // namespace

const char* to_string(AuditPoint p) {
  switch (p) {
    case AuditPoint::kStart:
      return "start";
    case AuditPoint::kTick:
      return "tick";
    case AuditPoint::kAccountingBegin:
      return "accounting-begin";
    case AuditPoint::kAccountingEnd:
      return "accounting-end";
    case AuditPoint::kVcrdOp:
      return "vcrd-op";
    case AuditPoint::kBlock:
      return "block";
    case AuditPoint::kKick:
      return "kick";
    case AuditPoint::kIpi:
      return "ipi";
    case AuditPoint::kHotplug:
      return "hotplug";
    case AuditPoint::kFault:
      return "fault";
    case AuditPoint::kLifecycle:
      return "lifecycle";
  }
  return "?";
}

Hypervisor::Hypervisor(sim::Simulator& simulation,
                       const hw::MachineConfig& machine, SchedMode mode,
                       sim::Trace* trace, std::uint64_t seed)
    : sim_(simulation),
      machine_(machine),
      mode_(mode),
      trace_(trace),
      rng_(seed ^ 0xA5A5A5A5ULL),
      ipi_(simulation, machine),
      pcpus_(machine.num_pcpus),
      online_pcpus_(machine.num_pcpus),
      slot_len_(machine.slot_cycles()),
      timeslice_len_(machine.timeslice_cycles()),
      credit_cap_(static_cast<Credit>(static_cast<__int128>(2) *
                                      machine.slots_per_accounting *
                                      kCreditPerSlot)) {
  // Reject a degenerate machine before any placement arithmetic can divide
  // or modulo by zero. Validation must happen here, not at start():
  // create_vm is legal pre-start and already places VCPUs.
  const auto issues = hw::validate_config(machine_);
  if (!issues.empty()) {
    std::string what = "invalid MachineConfig:";
    for (const auto& i : issues)
      what += std::string(" [") + hw::to_string(i.kind) + "] " + i.what + ";";
    throw std::invalid_argument(what);
  }
  topo_ = machine_.resolved_topology();
  topo_flat_ = topo_.is_flat();
  cross_llc_penalty_ = machine_.cross_llc_penalty();
  cross_socket_penalty_ = machine_.cross_socket_penalty();
  warm_window_ = machine_.warm_cache_window();
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    pcpus_[p].idle_since = sim_.now();
    ipi_.set_handler(p, [this](PcpuId target, std::uint32_t vector) {
      ipi_handler(target, vector);
    });
  }
}

void Hypervisor::attach_guest(VmId id, GuestPort* guest) {
  // Legal before start() and right after a hot create_vm; never re-wire a
  // tombstone (destroy_vm detached its guest for good).
  assert(vm(id).alive);
  vm(id).guest = guest;
}

void Hypervisor::start() {
  assert(!started_);
  started_ = true;
  // Resolve the resilience knobs the caller left at "derive from machine",
  // then hold every count knob to its core/bounds_spec.h interval — the
  // same interval the value-range proof assumed, so no caller can push the
  // credit/boost arithmetic outside the proved space.
  if (resilience_.ipi_ack_timeout.v == 0)
    resilience_.ipi_ack_timeout = Cycles{machine_.ipi_latency().v * 8};
  if (resilience_.gang_watchdog.v == 0)
    resilience_.gang_watchdog = Cycles{slot_len_.v * 2};
  if (resilience_.flap_window.v == 0)
    resilience_.flap_window = Cycles{slot_len_.v * 5};
  if (resilience_.demote_backoff.v == 0)
    resilience_.demote_backoff = Cycles{slot_len_.v * 12};
  if (resilience_.boost_window.v == 0)
    resilience_.boost_window = Cycles{slot_len_.v * 5};
  if (resilience_.boost_penalty.v == 0)
    resilience_.boost_penalty = Cycles{slot_len_.v * 12};
  if (resilience_.vcrd_check_window.v == 0)
    resilience_.vcrd_check_window = Cycles{slot_len_.v * 5};
  if (admission_.restore_backoff.v == 0)
    admission_.restore_backoff = Cycles{slot_len_.v * 12};
  resilience_.ipi_max_retries = core::clamp_to_bounds(
      core::field::ipi_max_retries, resilience_.ipi_max_retries);
  resilience_.watchdog_demote_after = core::clamp_to_bounds(
      core::field::watchdog_demote_after, resilience_.watchdog_demote_after);
  resilience_.flap_limit =
      core::clamp_to_bounds(core::field::flap_limit, resilience_.flap_limit);
  resilience_.boost_limit =
      core::clamp_to_bounds(core::field::boost_limit, resilience_.boost_limit);
  resilience_.vcrd_min_yields = core::clamp_to_bounds(
      core::field::vcrd_min_yields, resilience_.vcrd_min_yields);
  if (admission_enabled()) {
    const core::FieldBounds* lb =
        core::bounds_of(core::field::max_vcpus_per_pcpu);
    if (admission_.max_vcpus_per_pcpu > static_cast<double>(lb->hi))
      admission_.max_vcpus_per_pcpu = static_cast<double>(lb->hi);
    const core::FieldBounds* sb = core::bounds_of(core::field::shed_level_ppm);
    const core::FieldBounds* rb =
        core::bounds_of(core::field::restore_level_ppm);
    admission_.shed_level =
        std::clamp(admission_.shed_level, static_cast<double>(sb->lo) / 1e6,
                   static_cast<double>(sb->hi) / 1e6);
    admission_.restore_level =
        std::clamp(admission_.restore_level, static_cast<double>(rb->lo) / 1e6,
                   static_cast<double>(rb->hi) / 1e6);
  }
  in_scheduler_ = true;
  maybe_shed_overload();  // a boot-time fleet may already exceed the level
  do_accounting();
  for (PcpuId i = 0; i < machine_.num_pcpus; ++i)
    dispatch((dispatch_start_ + i) % machine_.num_pcpus);
  dispatch_start_ = (dispatch_start_ + 1) % machine_.num_pcpus;
  in_scheduler_ = false;
  // Per-PCPU ticks, staggered across the slot like real Xen's independent
  // per-PCPU timers; the stagger is what lets a capped VM's VCPUs park and
  // unpark at different instants.
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    const Cycles phase{slot_len_.v * (p + 1) / machine_.num_pcpus};
    sim_.after(phase, [this, p] { pcpu_tick(p); });
  }
  sim_.after(machine_.accounting_cycles(), [this] { accounting_event(); });
  audit_event(AuditPoint::kStart);
}

double Hypervisor::weight_proportion(VmId id) const {
  if (!vm(id).alive) return 0.0;
  std::uint64_t total = 0;
  for (const auto& v : vms_)
    if (v->alive) total += v->weight;
  return total == 0 ? 0.0
                    : static_cast<double>(vm(id).weight) /
                          static_cast<double>(total);
}

double Hypervisor::nominal_online_rate(VmId id) const {
  const Vm& v = vm(id);
  return static_cast<double>(machine_.num_pcpus) * weight_proportion(id) /
         static_cast<double>(v.num_vcpus());
}

bool Hypervisor::vcpu_is_online(VmId id, std::uint32_t vidx) const {
  return vm(id).vcpus[vidx].state == VcpuState::kRunning;
}

std::uint32_t Hypervisor::vm_online_count(VmId id) const {
  std::uint32_t n = 0;
  for (const Vcpu& c : vm(id).vcpus)
    if (c.state == VcpuState::kRunning) ++n;
  return n;
}

Cycles Hypervisor::pcpu_idle_total(PcpuId p) const {
  const PcpuRec& pc = pcpus_[p];
  Cycles t = pc.idle_total;
  if (pc.current == nullptr) t += sim_.now() - pc.idle_since;
  return t;
}

void Hypervisor::note_trace(sim::TraceCat cat, std::string msg) {
  if (trace_) trace_->emit(sim_.now(), cat, std::move(msg));
}

void Hypervisor::set_fault_hook(FaultHook* hook) {
  fault_hook_ = hook;
  if (hook) faults_armed_ = true;
}

std::uint64_t Hypervisor::vcrd_demotions() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->demotions;
  return n;
}

std::uint64_t Hypervisor::stale_vcrd_drops() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->stale_vcrd_drops;
  return n;
}

std::uint64_t Hypervisor::boost_grants() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->boost_grants;
  return n;
}

std::uint64_t Hypervisor::boost_denials() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->boost_denials;
  return n;
}

std::uint64_t Hypervisor::dodged_samples() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->dodged_samples;
  return n;
}

std::uint64_t Hypervisor::implausible_vcrds() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_) n += v->implausible_vcrds;
  return n;
}

std::uint64_t Hypervisor::theft_cycles_total() const {
  std::uint64_t n = 0;
  for (const auto& v : vms_)
    n += theft_cycles(v->total_online, v->cycles_attributed);
  return n;
}

// --- graceful degradation ---------------------------------------------------

void Hypervisor::demote_vm(Vm& v, const char* why) {
  v.degraded = true;
  v.degraded_until = sim_.now() + resilience_.demote_backoff;
  ++v.demotions;
  note_trace(sim::TraceCat::kMonitor,
             v.name + " demoted to stock credit treatment (" + why + ")");
  // Strip gang privileges immediately: cancel the boosts and let every
  // PCPU re-pick under stock rules (members with credit keep running as
  // ordinary UNDER VCPUs — degradation is graceful, not punitive).
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  co_stop(v);
  in_scheduler_ = was;
}

void Hypervisor::note_flap(Vm& v) {
  const Cycles now = sim_.now();
  if (v.flap_count == 0 ||
      now - v.flap_window_start > resilience_.flap_window) {
    v.flap_window_start = now;
    v.flap_count = 0;
  }
  ++v.flap_count;
  if (resilience_.flap_limit > 0 && v.flap_count > resilience_.flap_limit &&
      !v.degraded)
    demote_vm(v, "VCRD flap rate limit");
}

bool Hypervisor::grant_boost(Vm& m) {
  if (resilience_.boost_limit == 0) {  // limiter off: meter only
    ++m.boost_grants;
    return true;
  }
  const Cycles now = sim_.now();
  if (now < m.boost_penalty_until) {
    ++m.boost_denials;
    return false;
  }
  // Same sliding-window shape as note_flap: count grants in the current
  // window; overflow opens the penalty window.
  if (m.boost_count == 0 ||
      now - m.boost_window_start > resilience_.boost_window) {
    m.boost_window_start = now;
    m.boost_count = 0;
  }
  if (++m.boost_count > resilience_.boost_limit) {
    m.boost_penalty_until = now + resilience_.boost_penalty;
    ++m.boost_denials;
    note_trace(sim::TraceCat::kMonitor,
               m.name + " BOOST rate limit hit (abuse suspected)");
    return false;
  }
  ++m.boost_grants;
  return true;
}

void Hypervisor::vcpu_yield_hint(VmId id, std::uint32_t vidx) {
  // Pure observation — never touches scheduling state. The per-VM sliding
  // window is the hardware-side spin evidence the VCRD plausibility clamp
  // cross-checks HIGH claims against (a guest that claims heavy spin-wait
  // but never yielded is lying).
  (void)vidx;
  if (halted_ || id >= vms_.size() || !vms_[id]->alive) return;
  Vm& v = *vms_[id];
  ++v.yield_hints;
  const Cycles now = sim_.now();
  if (v.yields_in_window == 0 ||
      now - v.yield_window_start > resilience_.vcrd_check_window) {
    v.yield_window_start = now;
    v.yields_in_window = 0;
  }
  ++v.yields_in_window;
}

void Hypervisor::degradation_tick(Vm& v) {
  const Cycles now = sim_.now();
  if (v.degraded && now >= v.degraded_until) {
    v.degraded = false;
    v.flap_count = 0;
    v.watchdog_streak = 0;
    note_trace(sim::TraceCat::kMonitor, v.name + " degraded state lifted");
    // While degraded the members ran under stock rules and may have drifted
    // onto shared homes; a gang must regain coscheduling with a coherent
    // placement or the next launch would double-book a PCPU. (Excess-socket
    // drift is repacked too under topology-aware placement.)
    if (cosched_eligible(v) &&
        (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
      relocate_vm(v);
  }
  if (resilience_.vcrd_ttl.v > 0 && v.vcrd == Vcrd::kHigh &&
      now - v.vcrd_last_report > resilience_.vcrd_ttl) {
    // The Monitoring Module went silent while HIGH: a stale report must not
    // hold coscheduling privileges forever. Mirrors do_vcrd_op's HIGH->LOW
    // bookkeeping so the VCRD statistics stay exact.
    v.vcrd = Vcrd::kLow;
    v.vcrd_high_time += now - v.vcrd_high_since;
    ++v.stale_vcrd_drops;
    note_trace(sim::TraceCat::kMonitor, v.name + " VCRD stale -> LOW (TTL)");
  }
}

void Hypervisor::arm_gang_watchdog(Vm& v) {
  if (v.watchdog_ev.valid()) return;
  v.watchdog_ev = sim_.after(resilience_.gang_watchdog,
                             [this, id = v.id] { gang_watchdog_fire(id); });
}

void Hypervisor::gang_watchdog_fire(VmId id) {
  Vm& v = *vms_[id];
  v.watchdog_ev = {};
  if (!cosched_eligible(v)) {
    v.watchdog_streak = 0;
    return;
  }
  std::uint32_t running = 0;
  std::uint32_t absent = 0;  // runnable members that never came online
  for (const Vcpu& w : v.vcpus) {
    if (w.state == VcpuState::kRunning)
      ++running;
    else if (w.state == VcpuState::kRunnable)
      ++absent;
  }
  if (running > 0 && absent > 0) {
    ++gang_watchdog_fires_;
    ++v.watchdog_streak;
    note_trace(sim::TraceCat::kCosched,
               v.name + " gang watchdog: partial gang released");
    if (resilience_.watchdog_demote_after > 0 &&
        v.watchdog_streak >= resilience_.watchdog_demote_after) {
      demote_vm(v, "gang watchdog streak");  // includes the co-stop
    } else {
      in_scheduler_ = true;
      co_stop(v);
      in_scheduler_ = false;
    }
  } else {
    v.watchdog_streak = 0;
  }
  if (cosched_eligible(v)) arm_gang_watchdog(v);
}

void Hypervisor::ipi_ack_check(VmId vm_id, std::uint32_t vidx,
                               std::uint32_t attempt, bool strong) {
  if (halted_) return;  // the ack deadline outlived the host
  Vm& v = *vms_[vm_id];
  if (!cosched_eligible(v)) return;
  if (vidx >= v.num_vcpus()) return;  // resized away while the ack was armed
  Vcpu& sib = v.vcpus[vidx];
  // Arrived (running or boosted) or moot (blocked/crashed): nothing to do.
  if (sib.state != VcpuState::kRunnable || sib.cosched_boost) return;
  if (attempt > resilience_.ipi_max_retries) {
    ++gang_ipi_aborts_;
    note_trace(sim::TraceCat::kCosched,
               v.name + " gang start abandoned for this slot (" +
                   key_str(sib.key) + " unreachable after retries)");
    return;
  }
  ++ipi_retries_;
  const std::uint32_t vector = vm_id * 2 + (strong ? 1u : 0u);
  note_trace(sim::TraceCat::kCosched,
             "IPI retry " + std::to_string(attempt) + " for " +
                 key_str(sib.key));
  ipi_.send(sib.where, sib.where, vector);
  sim_.after(resilience_.ipi_ack_timeout,
             [this, vm_id, vidx, attempt, strong] {
               ipi_ack_check(vm_id, vidx, attempt + 1, strong);
             });
}

PcpuId Hypervisor::pick_online_home(VmId vm_for_collision,
                                    PcpuId near) const {
  // Least-loaded online PCPU; a home free of gang siblings is preferred so
  // evacuation preserves pairwise-distinct placement (cosched_eligible
  // guarantees one exists by pigeonhole: gang size <= online PCPUs).
  // Under topology-aware placement, collision-freedom still dominates but
  // among equals a home closer to `near` wins (same-LLC, then same-socket,
  // then remote) so evacuees and wakes stay near their warm cache.
  const bool keep_distinct = cosched_eligible(vm(vm_for_collision));
  const bool by_distance = topo_place_active();
  PcpuId dest = machine_.num_pcpus;
  std::size_t best_load = 0;
  bool best_collides = true;
  int best_dist = 0;
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    const PcpuRec& pc = pcpus_[p];
    if (!pc.online) continue;
    const std::size_t load =
        pc.runq.size() + (pc.current != nullptr ? 1u : 0u);
    const bool collides = keep_distinct && would_collide(vm_for_collision, p);
    const int dist =
        by_distance ? static_cast<int>(topo_.distance(near, p)) : 0;
    bool better = false;
    if (dest == machine_.num_pcpus) {
      better = true;
    } else if (collides != best_collides) {
      better = !collides;
    } else if (dist != best_dist) {
      better = dist < best_dist;
    } else {
      better = load < best_load;
    }
    if (better) {
      dest = p;
      best_load = load;
      best_collides = collides;
      best_dist = dist;
    }
  }
  return dest;
}

bool Hypervisor::gang_homes_collide(const Vm& v) const {
  std::vector<bool> used(machine_.num_pcpus, false);
  for (const Vcpu& c : v.vcpus) {
    if (!pcpus_[c.where].online || used[c.where]) return true;
    used[c.where] = true;
  }
  return false;
}

// --- topology cost model & socket packing ------------------------------------

Cycles Hypervisor::would_be_penalty(const Vcpu& v, PcpuId to) const {
  if (!topo_cost_active() || !v.ever_ran) return Cycles{0};
  if (sim_.now() - v.cache_home_at >= warm_window_) return Cycles{0};
  switch (topo_.distance(v.cache_home, to)) {
    case hw::TopoDistance::kSameSocket:
      return cross_llc_penalty_;
    case hw::TopoDistance::kCrossSocket:
      return cross_socket_penalty_;
    case hw::TopoDistance::kSelf:
    case hw::TopoDistance::kSameLlc:
      break;
  }
  return Cycles{0};
}

void Hypervisor::note_migration(Vcpu& v, PcpuId from, PcpuId to) {
  if (!topo_cost_active()) return;
  Vm& owner = vm(v.key.vm);
  const hw::TopoDistance hop = topo_.distance(from, to);
  switch (hop) {
    case hw::TopoDistance::kSameSocket:
      ++v.cross_llc_migrations;
      ++owner.cross_llc_migrations;
      ++cross_llc_migrations_;
      break;
    case hw::TopoDistance::kCrossSocket:
      ++v.cross_socket_migrations;
      ++owner.cross_socket_migrations;
      ++cross_socket_migrations_;
      break;
    case hw::TopoDistance::kSelf:
    case hw::TopoDistance::kSameLlc:
      return;  // the shared LLC keeps the working set: free move
  }
  const Cycles pen = would_be_penalty(v, to);
  if (pen.v == 0) return;  // cache already cold (or still same-LLC warm)
  migration_penalty_cycles_ += pen;
  owner.migration_penalty += pen;
  // Deterministic debit at the slot-credit exchange rate. charge() samples
  // the RNG per span; the cost model must not perturb that stream, or a
  // flat-vs-aware comparison would diverge for reasons other than cost.
  const Credit debit = static_cast<Credit>(
      (static_cast<__int128>(pen.v) * kCreditPerSlot) / slot_len_.v);
  v.credit = std::max<Credit>(v.credit - debit, -credit_cap_);
  note_trace(sim::TraceCat::kSched,
             key_str(v.key) + " " + std::string(hw::to_string(hop)) +
                 " migration P" + std::to_string(from) + "->P" +
                 std::to_string(to) + " penalty=" + std::to_string(pen.v));
}

std::vector<bool> Hypervisor::gang_socket_set(const Vm& v) const {
  // Sockets pinned by running members, greedily extended (largest spare
  // online-unclaimed capacity, tie lowest socket id) until the non-running
  // members fit. Both relocate_vm_topo and the audit invariant derive
  // "minimal" from this one function, so they can never disagree.
  std::vector<bool> claimed(machine_.num_pcpus, false);
  std::vector<bool> allowed(topo_.num_sockets(), false);
  std::uint32_t remaining = 0;
  for (const Vcpu& c : v.vcpus) {
    if (c.state == VcpuState::kRunning) {
      claimed[c.where] = true;
      allowed[topo_.socket_of(c.where)] = true;
    } else {
      ++remaining;
    }
  }
  const auto spare = [&](std::uint32_t s) {
    std::uint32_t n = 0;
    for (PcpuId p : topo_.pcpus_in_socket(s))
      if (pcpus_[p].online && !claimed[p]) ++n;
    return n;
  };
  std::uint32_t capacity = 0;
  for (std::uint32_t s = 0; s < topo_.num_sockets(); ++s)
    if (allowed[s]) capacity += spare(s);
  while (capacity < remaining) {
    std::uint32_t best = topo_.num_sockets();
    std::uint32_t best_spare = 0;
    for (std::uint32_t s = 0; s < topo_.num_sockets(); ++s) {
      if (allowed[s]) continue;
      const std::uint32_t sp = spare(s);
      if (best == topo_.num_sockets() || sp > best_spare) {
        best = s;
        best_spare = sp;
      }
    }
    if (best == topo_.num_sockets() || best_spare == 0) break;
    allowed[best] = true;
    capacity += best_spare;
  }
  return allowed;
}

bool Hypervisor::gang_spans_excess_sockets(const Vm& v) const {
  if (!topo_place_active() || !cosched_eligible(v)) return false;
  const std::vector<bool> allowed = gang_socket_set(v);
  for (const Vcpu& c : v.vcpus)
    if (!allowed[topo_.socket_of(c.where)]) return true;
  return false;
}

// --- credit machinery ------------------------------------------------------

void Hypervisor::burn(Vcpu& v, Cycles elapsed) {
  // Online-time accounting only; credit is debited separately by charge().
  // The PCPU-side busy ledger moves at exactly the same instants, so
  // sum(vm.total_online) == sum(pcpu.busy_total) holds at every event (the
  // kCycleConservation invariant). `where` is the hosting PCPU: burn is
  // only ever called on the current VCPU of some PCPU.
  v.total_online += elapsed;
  vm(v.key.vm).total_online += elapsed;
  pcpus_[v.where].busy_total += elapsed;
}

void Hypervisor::attribute(Vcpu& v, Cycles span) {
  v.attributed += span;
  vm(v.key.vm).cycles_attributed += span;
}

void Hypervisor::charge(Vcpu& v, Cycles elapsed) {
  if (elapsed.v == 0) return;
  switch (resilience_.accounting) {
    case AccountingMode::kStochastic: {
      const double p = std::min(1.0, static_cast<double>(elapsed.v) /
                                         static_cast<double>(slot_len_.v));
      if (rng_.next_double() < p) {
        v.credit = std::max<Credit>(v.credit - kCreditPerSlot, -credit_cap_);
        attribute(v, slot_len_);
      } else {
        ++vm(v.key.vm).dodged_samples;
      }
      return;
    }
    case AccountingMode::kExact: {
      // Tickless integer-exact debit: elapsed cycles at kCreditPerSlot per
      // slot, widened through __int128, with the sub-slot remainder carried
      // on the VCPU so nothing is lost to rounding — and nothing is left
      // for a tick-dodger to dodge.
      const __int128 num =
          static_cast<__int128>(elapsed.v) * kCreditPerSlot + v.charge_carry;
      const Credit debit = static_cast<Credit>(num / slot_len_.v);
      v.charge_carry = static_cast<std::uint64_t>(num % slot_len_.v);
      v.credit = std::max<Credit>(v.credit - debit, -credit_cap_);
      attribute(v, elapsed);
      return;
    }
    case AccountingMode::kTickSampled:
      // Faithful vulnerable Xen: spans are never billed directly — only a
      // sampling instant (see charge(Vcpu&)) charges. A span that crossed
      // no instant since it came online escaped accounting entirely: that
      // is the tick-dodger's theft, and the meter records it. (`<=`: a
      // span that started exactly at an instant was dispatched after the
      // sample fired, so it escaped too.)
      if (pcpus_[v.where].last_sample_at <= v.online_since)
        ++vm(v.key.vm).dodged_samples;
      return;
  }
}

void Hypervisor::charge(Vcpu& v) {
  // Sampling-instant debit (kTickSampled): the VCPU caught running pays a
  // full slot regardless of how long it actually ran — Xen's classic
  // sampled accounting, billed and attributed in slot quanta.
  v.credit = std::max<Credit>(v.credit - kCreditPerSlot, -credit_cap_);
  attribute(v, slot_len_);
}

void Hypervisor::sample_instant(PcpuId p) {
  if (halted_) return;  // a jittered sample armed before the crash
  PcpuRec& pc = pcpus_[p];
  pc.last_sample_at = sim_.now();
  if (pc.current != nullptr) charge(*pc.current);
}

void Hypervisor::do_accounting() {
  // Overload governor boundary: restore coscheduling (after the backoff,
  // if load has fallen) before credit is assigned, so relocation hooks in
  // on_accounting see the final eligibility for this period.
  maybe_restore_overload();
  // Memory-system contention pass (docs/MODEL.md §2.8): split the closing
  // period's busy cycles into effective + degraded and let the pressure
  // balancer swap homes — before the audit pool snapshot below, because
  // the balancer's note_migration debits credit exactly like the
  // relocations the overload restore may trigger.
  apply_contention();
  // Active set (work-conserving mode only, like Xen's csched_acct): credit
  // is divided among VMs that actually consumed CPU last period. Without
  // this, an idle VM's share is minted, capped away, and effectively
  // charged to the busy VMs, which all sink to -cap and erase the
  // UNDER/OVER distinction the dispatcher relies on. In the capped
  // (non-work-conserving) mode the paper's Equations (1)-(2) explicitly
  // include every VM's weight, so there the full set is used.
  const Cycles min_active{machine_.accounting_cycles().v / 100};
  std::uint64_t total_weight = 0;
  std::vector<bool> active(vms_.size(), true);
  // Jain fairness inputs for the period just closing: weighted consumption
  // of every VM that wanted or got CPU (an idle VM is not a fairness
  // participant; a starved runnable one very much is).
  std::vector<double> shares;
  shares.reserve(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& v = *vms_[i];
    if (!v.alive) {  // tombstone: earns nothing, holds nothing
      active[i] = false;
      continue;
    }
    degradation_tick(v);  // lift expired demotions, drop stale HIGH VCRDs
    // Wants to run (a queued-but-starved VM must keep earning, or
    // starvation would cut its income and become permanent)...
    bool runnable = false;
    for (const Vcpu& c : v.vcpus)
      if (c.state != VcpuState::kBlocked) {
        runnable = true;
        break;
      }
    const Cycles consumed = v.total_online - v.online_at_last_acct;
    // ...or ran: active either way (work-conserving mode only, like Xen's
    // csched_acct; the capped mode's Equations (1)-(2) use every weight).
    if (mode_ == SchedMode::kWorkConserving && slots_elapsed() > 0)
      active[i] = runnable || consumed > min_active;
    if (slots_elapsed() > 0 && (runnable || consumed.v > 0))
      shares.push_back(static_cast<double>(consumed.v) /
                       static_cast<double>(v.weight));
    v.online_at_last_acct = v.total_online;
    if (active[i]) total_weight += v.weight;
  }
  if (shares.size() >= 2) {
    double s = 0.0;
    double s2 = 0.0;
    for (const double x : shares) {
      s += x;
      s2 += x * x;
    }
    if (s2 > 0.0) {
      const double j =
          (s * s) / (static_cast<double>(shares.size()) * s2);
      fairness_min_ = std::min(fairness_min_, j);
      fairness_sum_ += j;
      ++fairness_periods_;
    }
  }
  if (total_weight == 0) {
    for (std::size_t i = 0; i < vms_.size(); ++i) {
      if (!vms_[i]->alive) continue;
      active[i] = true;
      total_weight += vms_[i]->weight;
    }
  }
  if (total_weight == 0) return;
  // Algorithm 3: Cred_total = |P| x Cred_unit x K, split by weight, spread
  // equally over each VM's VCPUs, capped so idle VMs cannot hoard. Like
  // Xen's csched_acct, the VM's residual credit is pooled and redistributed
  // equally among its VCPUs, so intra-VM divergence (from the quantized
  // tick charging) is erased every accounting period while inter-VM
  // proportions are preserved.
  const Credit total = static_cast<Credit>(
      static_cast<__int128>(machine_.num_pcpus) * kCreditPerSlot *
      machine_.slots_per_accounting);
  // The audit pool snapshot happens here — not at function entry — because
  // the overload restore and degradation ticks above may relocate a gang,
  // and a relocation's migration-penalty debit would silently shrink the
  // pool between an earlier snapshot and this read.
  audit_event(AuditPoint::kAccountingBegin);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& v = *vms_[i];
    if (!v.alive) continue;
    const Credit inc =
        active[i]
            ? static_cast<Credit>((static_cast<__int128>(total) * v.weight) /
                                  total_weight)
            : 0;
    Credit pool = inc;
    for (const Vcpu& c : v.vcpus) pool += c.credit;
    const Credit per = pool / static_cast<Credit>(v.num_vcpus());
    for (Vcpu& c : v.vcpus) c.credit = std::min<Credit>(per, credit_cap_);
    audit_minted(v.id, inc);
    on_accounting(v);
  }
  note_trace(sim::TraceCat::kCredit, "accounting done");
}

// --- audited mutation seam --------------------------------------------------
//
// Every VcpuState write and run-queue membership change in the VMM flows
// through these three functions; asman-lint's audit-seam check rejects any
// other site. set_state reads `from` out of the record itself, so the
// transition the auditor's shadow replays is by construction the transition
// that actually happened — the two copies cannot be told different stories.

void Hypervisor::set_state(Vcpu& v, VcpuState to) {
  const VcpuState from = v.state;
  v.state = to;
  audit_transition(v.key, from, to);
}

void Hypervisor::enqueue(PcpuId p, Vcpu* v) { pcpus_[p].runq.push(v); }

bool Hypervisor::dequeue(PcpuId p, Vcpu* v) {
  return pcpus_[p].runq.remove(v);
}

// --- map / unmap ------------------------------------------------------------

void Hypervisor::go_online(PcpuId p, Vcpu* v) {
  PcpuRec& pc = pcpus_[p];
  assert(pc.current == nullptr);
  assert(v->state == VcpuState::kRunnable);
  if (pc.idle_marked) {
    pc.idle_total += sim_.now() - pc.idle_since;
    pc.idle_marked = false;
  }
  pc.current = v;
  set_state(*v, VcpuState::kRunning);
  v->where = p;
  v->online_since = sim_.now();
  v->slice_start = sim_.now();
  ++v->dispatches;
  ++context_switches_;
  note_trace(sim::TraceCat::kSched, key_str(v->key) + " online on P" +
                                        std::to_string(p));
  Vm& owner = vm(v->key.vm);
  if (owner.guest) owner.guest->vcpu_online(v->key.idx);
}

Vcpu* Hypervisor::unmap_current(PcpuId p) {
  PcpuRec& pc = pcpus_[p];
  Vcpu* v = pc.current;
  assert(v != nullptr);
  const Cycles elapsed = sim_.now() - v->online_since;
  burn(*v, elapsed);
  charge(*v, elapsed);
  pc.current = nullptr;
  set_state(*v, VcpuState::kRunnable);
  // Cache-affinity bookkeeping: this PCPU now holds the VCPU's warm working
  // set (pure statistics on flat topologies — never read there).
  v->ever_ran = true;
  v->cache_home = p;
  v->cache_home_at = sim_.now();
  note_trace(sim::TraceCat::kSched, key_str(v->key) + " offline from P" +
                                        std::to_string(p));
  Vm& owner = vm(v->key.vm);
  if (owner.guest) owner.guest->vcpu_offline(v->key.idx);
  return v;
}

void Hypervisor::go_offline(PcpuId p) {
  Vcpu* v = unmap_current(p);
  enqueue(p, v);
}

bool Hypervisor::is_schedulable(const Vcpu& v) const {
  // A cosched boost overrides credit parking: the per-VM credit pool pays
  // for the aligned burst at the next accounting, so VM-level shares hold.
  return mode_ == SchedMode::kWorkConserving || v.credit >= 0 ||
         v.cosched_boost;
}

bool Hypervisor::would_collide(VmId vm_id, PcpuId p) const {
  const PcpuRec& pc = pcpus_[p];
  if (pc.current && pc.current->key.vm == vm_id) return true;
  if (pc.runq.has_vm(vm_id)) return true;
  // Blocked siblings count too: their `where` is the wake-up home Algorithm
  // 3 assigned, and a steal onto it would silently undo the pairwise-
  // distinct placement the moment the sibling kicks awake.
  for (const Vcpu& c : vm(vm_id).vcpus)
    if (c.state == VcpuState::kBlocked && c.where == p) return true;
  return false;
}

// --- dispatch (Algorithm 4) -------------------------------------------------

Vcpu* Hypervisor::steal_for(PcpuId p, bool allow_over) {
  // Topology-aware placement ranks source queues by distance first (prefer
  // same-LLC, then same-socket, then remote) and applies a penalty-adjusted
  // gain gate: a steal buys at most about one slot of progress before the
  // next scheduling event, so a warm-cache refill costing a slot or more is
  // a net loss and the candidate is skipped (counted). Flat topologies take
  // the classic distance-blind path bit-identically.
  const bool by_distance = topo_place_active();
  Vcpu* best = nullptr;
  PcpuId src = 0;
  int best_dist = 0;
  for (PcpuId q = 0; q < machine_.num_pcpus; ++q) {
    if (q == p) continue;
    if (!pcpus_[q].online) continue;  // offline queues are empty anyway
    const int dist =
        by_distance ? static_cast<int>(topo_.distance(q, p)) : 0;
    // Cross-socket stealing is conservative, like a NUMA sched domain: a
    // queue with a single waiter is not overloaded — its VCPU runs next
    // slot on its warm home anyway, so hauling it over the FSB trades a
    // cache refill for one slot of latency. Only genuinely backed-up
    // remote queues (two or more waiters) are worth raiding.
    if (by_distance && dist == static_cast<int>(hw::TopoDistance::kCrossSocket) &&
        pcpus_[q].runq.size() < 2)
      continue;
    for (Vcpu* v : pcpus_[q].runq.entries()) {
      if (!allow_over && static_cast<int>(v->prio_class()) >
                             static_cast<int>(PrioClass::kUnder))
        continue;
      if (v->cosched_boost) continue;  // an IPI promised it to its queue
      const bool gang = cosched_eligible(vm(v->key.vm));
      if (gang && would_collide(v->key.vm, p)) continue;
      // Never pull a packed gang's member across the FSB: the next
      // relocation would only repatriate it, paying the hop twice.
      if (by_distance && gang &&
          dist == static_cast<int>(hw::TopoDistance::kCrossSocket))
        continue;
      if (by_distance && would_be_penalty(*v, p) >= slot_len_) {
        ++topology_steal_rejects_;
        continue;
      }
      // Pressure gate: refuse a raid only when it makes contention
      // strictly worse — the destination LLC would end up deeper past
      // saturation than the candidate's current domain already is. Mere
      // fullness is not a reason: blocking every steal into a busy domain
      // pins the whole fleet to its boot homes and costs far more in lost
      // work conservation than the occupancy it saves. The demand view is
      // the engine's last published pass; same-LLC pulls move no occupancy.
      if (pressure_place_active() && !pass_.llc_demand.empty()) {
        const std::uint64_t share = vcpu_llc_share(*v);
        const std::uint32_t dest_llc = topo_.llc_of(p);
        const std::uint32_t src_llc = topo_.llc_of(v->where);
        if (share > 0 && dest_llc != src_llc) {
          const std::uint64_t cap = machine_.llc_bytes;
          const std::uint64_t dst_after = pass_.llc_demand[dest_llc] + share;
          const std::uint64_t src_now = pass_.llc_demand[src_llc];
          if (dst_after > cap &&
              dst_after - cap > (src_now > cap ? src_now - cap : 0)) {
            ++pressure_steal_rejects_;
            continue;
          }
        }
      }
      if (best == nullptr || dist < best_dist ||
          (dist == best_dist && RunQueue::better(v, best))) {
        best = v;
        src = q;
        best_dist = dist;
      }
    }
  }
  if (best) {
    dequeue(src, best);
    note_migration(*best, best->where, p);
    best->where = p;
    ++best->migrations;
    ++migrations_;
  }
  return best;
}

void Hypervisor::dispatch(PcpuId p) {
  if (halted_) return;  // deferred lifecycle dispatches after a crash
  PcpuRec& pc = pcpus_[p];
  if (!pc.online) return;  // hot-unplugged: holds no work, picks none
  Vcpu* cur = pc.current;
  if (cur && !is_schedulable(*cur)) {
    // Algorithm 4 line 2: out of credit in the capped mode -> deschedule
    // (and co-stop its gang — a half-present gang only spins).
    preempt_current(p);
    cur = nullptr;
  }

  // Keep-current rule (Xen): the current VCPU continues over a queued
  // candidate of a strictly lower class, and over a same-class candidate
  // until its round-robin timeslice (30 ms) expires.
  const auto prefer_current = [this](const Vcpu* c, const Vcpu* q) {
    if (q == nullptr) return true;
    const int cc = static_cast<int>(c->prio_class());
    const int cq = static_cast<int>(q->prio_class());
    if (cc != cq) return cc < cq;
    return sim_.now() - c->slice_start < timeslice_len_;
  };

  // Pass 1: boost/UNDER candidates only (stolen work preferred over idling).
  Vcpu* cand = pc.runq.best(/*allow_over=*/false);
  Vcpu* cur_under = (cur && static_cast<int>(cur->prio_class()) <=
                                static_cast<int>(PrioClass::kUnder))
                        ? cur
                        : nullptr;
  Vcpu* choice = nullptr;
  bool stolen = false;
  if (cur_under && prefer_current(cur_under, cand))
    choice = cur_under;
  else if (cand)
    choice = cand;
  if (choice == nullptr) {
    choice = steal_for(p, /*allow_over=*/false);
    stolen = choice != nullptr;
  }

  // Pass 2 (work-conserving only): OVER fallback, local then remote.
  if (choice == nullptr && mode_ == SchedMode::kWorkConserving) {
    Vcpu* cand_o = pc.runq.best(/*allow_over=*/true);
    if (cur && prefer_current(cur, cand_o))
      choice = cur;
    else if (cand_o)
      choice = cand_o;
    if (choice == nullptr) {
      choice = steal_for(p, /*allow_over=*/true);
      stolen = choice != nullptr;
    }
  }

  if (choice == nullptr) {
    if (cur) go_offline(p);
    if (pc.current == nullptr && !pc.idle_marked) {
      pc.idle_marked = true;
      pc.idle_since = sim_.now();
    }
    return;
  }

  if (choice != cur) {
    // Secure the choice before any co-stop cascade can re-dispatch other
    // PCPUs (they must not steal it from under us).
    if (!stolen) {
      const bool removed = dequeue(p, choice);
      assert(removed);
      (void)removed;
    }
    if (cur) preempt_current(p);
    go_online(p, choice);
  }

  // Algorithm 4 lines 5-7: the head of a coscheduled VM triggers IPIs for
  // its siblings; the mutex admits one launcher per scheduling-event
  // instant (per-PCPU ticks at distinct times are distinct events).
  // Strict mode drops the paper's per-VCPU "credit >= 0" gate: with per-VM
  // credit pooling the meaningful entitlement is the VM's, and co-stop
  // enforces it — any legitimately dispatched member launches, otherwise a
  // member picked from spare (OVER) capacity in work-conserving mode would
  // run alone for up to an accounting period. Relaxed mode has no co-stop
  // backstop, so it keeps the paper's gate (an ungated boost would
  // self-sustain and starve other VMs).
  const bool entitled = strictness_ == Strictness::kStrict
                            ? true
                            : choice->credit >= 0;
  if (entitled && cosched_eligible(vm(choice->key.vm)) &&
      cosched_mutex_at_ != sim_.now()) {
    cosched_mutex_at_ = sim_.now();
    ++cosched_events_;
    launch_cosched(p, *choice);
  }
}

void Hypervisor::refresh_cosched_boost(Vcpu& v, bool weak) {
  v.cosched_boost = true;
  v.cosched_weak = weak;
  if (v.cosched_clear_ev.valid()) sim_.cancel(v.cosched_clear_ev);
  v.cosched_clear_ev = sim_.after(slot_len_, [this, &v] {
    v.cosched_boost = false;
    v.cosched_clear_ev = {};
  });
}

void Hypervisor::preempt_current(PcpuId p) {
  Vcpu* cur = pcpus_[p].current;
  assert(cur != nullptr);
  Vm& owner = vm(cur->key.vm);
  go_offline(p);
  if (strictness_ == Strictness::kStrict && !in_co_stop_ &&
      cosched_eligible(owner))
    co_stop(owner);
}

void Hypervisor::co_stop(Vm& v) {
  if (in_co_stop_) return;
  in_co_stop_ = true;
  ++co_stops_;
  note_trace(sim::TraceCat::kCosched, v.name + " co-stop");
  for (Vcpu& w : v.vcpus) {
    if (w.cosched_clear_ev.valid()) {
      sim_.cancel(w.cosched_clear_ev);
      w.cosched_clear_ev = {};
    }
    w.cosched_boost = false;
    w.cosched_weak = false;
  }
  // Deschedule every running member and let each PCPU re-pick: if the gang
  // is still the best claimant it resumes whole (and the head re-launches
  // boosts); otherwise it stops whole.
  for (Vcpu& w : v.vcpus) {
    if (w.state != VcpuState::kRunning) continue;
    const PcpuId p = w.where;
    go_offline(p);
    dispatch(p);
    if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
      pcpus_[p].idle_marked = true;
      pcpus_[p].idle_since = sim_.now();
    }
  }
  in_co_stop_ = false;
}

void Hypervisor::launch_cosched(PcpuId from, Vcpu& head) {
  Vm& gang = vm(head.key.vm);
  // A launch from an entitled head (credit >= 0) is "strong": its IPIs may
  // preempt whatever runs on the siblings' PCPUs, and the gang's OVER tail
  // (a still-strongly-boosted head, paid from the VM's credit pool until
  // co-stop) keeps re-launching strong. A launch from an *unboosted* head
  // dispatched out of spare (OVER) capacity — work-conserving mode only —
  // is "weak": it aligns the gang on capacity nobody entitled is using,
  // but must not displace UNDER VCPUs of other VMs.
  const bool strong =
      head.credit >= 0 || (head.cosched_boost && !head.cosched_weak);
  ++(strong ? strong_launches_ : weak_launches_);
  note_trace(sim::TraceCat::kCosched,
             "cosched launch " + gang.name + " from P" + std::to_string(from) +
                 (strong ? " (strong)" : " (weak)"));
  const std::uint32_t vector = gang.id * 2 + (strong ? 1u : 0u);
  for (Vcpu& w : gang.vcpus) {
    if (&w == &head) continue;
    if (w.state == VcpuState::kBlocked) continue;  // idle in the guest
    if (w.state == VcpuState::kRunning) {
      // Already online: refresh its boost so the gang stays intact.
      refresh_cosched_boost(w, !strong);
      continue;
    }
    ipi_.send(from, w.where, vector);
    // On a lossy bus the IPI may never arrive; arm a bounded-retry ack
    // check for this sibling. Fault-free buses skip the machinery entirely
    // so the event stream (and thus the run) stays bit-identical.
    if (ipi_.lossy() && resilience_.ipi_max_retries > 0 &&
        resilience_.ipi_ack_timeout.v > 0) {
      const VmId id = gang.id;
      const std::uint32_t vidx = w.key.idx;
      sim_.after(resilience_.ipi_ack_timeout, [this, id, vidx, strong] {
        ipi_ack_check(id, vidx, 1, strong);
      });
    }
  }
  // Strict gangs additionally get a co-stop watchdog: if a sibling never
  // arrives (lost IPI, crashed VCPU) the gang must not hold its PCPUs
  // hostage forever. Armed only when faults are in play.
  if (strictness_ == Strictness::kStrict && degradation_armed() &&
      resilience_.gang_watchdog.v > 0)
    arm_gang_watchdog(gang);
}

void Hypervisor::ipi_handler(PcpuId target, std::uint32_t vector) {
  if (halted_) return;  // in-flight on the bus when the host crashed
  const VmId vm_id = vector / 2;
  const bool strong = (vector & 1u) != 0;
  // Find the gang member this IPI was aimed at; it may have been dispatched
  // or migrated during the bus latency, in which case there is nothing to do.
  PcpuRec& pc = pcpus_[target];
  Vcpu* sib = nullptr;
  for (Vcpu* v : pc.runq.entries()) {
    if (v->key.vm != vm_id) continue;
    if (sib == nullptr || RunQueue::better(v, sib)) sib = v;
  }
  if (sib == nullptr) return;
  if (pc.current != nullptr) {
    if (pc.current->key.vm == vm_id) return;  // gang already online here
    if (pc.current->prio_class() == PrioClass::kCosched)
      return;  // never preempt another gang's boosted member
    if (!strong && pc.current->credit >= 0)
      return;  // weak (spare-capacity) boosts never displace UNDER VCPUs
    // Secure the sibling before preempting: the victim's co-stop cascade
    // re-dispatches other PCPUs, which must not steal it from under us.
    dequeue(target, sib);
    in_scheduler_ = true;
    preempt_current(target);
    in_scheduler_ = false;
    if (pc.current != nullptr) {
      enqueue(target, sib);  // the cascade refilled this PCPU
      audit_event(AuditPoint::kIpi);
      return;
    }
  } else {
    dequeue(target, sib);
  }
  refresh_cosched_boost(*sib, !strong);
  in_scheduler_ = true;
  go_online(target, sib);
  in_scheduler_ = false;
  note_trace(sim::TraceCat::kCosched,
             key_str(sib->key) + " cosched-boosted on P" +
                 std::to_string(target));
  audit_event(AuditPoint::kIpi);
}

void Hypervisor::pcpu_tick(PcpuId p) {
  if (halted_) return;  // crashed host: the tick chain ends here
  in_scheduler_ = true;
  PcpuRec& pc = pcpus_[p];
  ++pc.ticks;
  // Wake boosts last until the next scheduling event on the holding PCPU.
  // Cosched boosts expire on their own one-slot timer and are refreshed by
  // the gang head's scheduling events, so a live gang sustains itself.
  if (pc.current) pc.current->wake_boost = false;
  for (Vcpu* v : pc.runq.entries()) v->wake_boost = false;
  // Sampled accounting bills at sampling instants, not spans: at the tick
  // itself (faithful vulnerable Xen), or — hardened — at a seeded-random
  // offset inside the coming slot, where a tick-grid dodger cannot aim.
  if (resilience_.accounting == AccountingMode::kTickSampled) {
    if (!resilience_.sample_offset_jitter)
      sample_instant(p);
    else
      sim_.after(Cycles{rng_.next_below(slot_len_.v)},
                 [this, p] { sample_instant(p); });
  }
  // Account online time and charge whoever is running at the tick.
  if (pc.current) {
    const Cycles elapsed = sim_.now() - pc.current->online_since;
    burn(*pc.current, elapsed);
    charge(*pc.current, elapsed);
    pc.current->online_since = sim_.now();
  }
  // Co-stop check: a gang whose last member ran out of credit is
  // descheduled as a unit (boosted or not — unboosted heads parking one by
  // one would leave partial gangs spinning on absent peers).
  if (strictness_ == Strictness::kStrict && pc.current &&
      pc.current->credit < 0) {
    Vm& owner = vm(pc.current->key.vm);
    if (cosched_eligible(owner)) {
      bool any_entitled = false;
      for (const Vcpu& w : owner.vcpus)
        if (w.credit >= 0) {
          any_entitled = true;
          break;
        }
      if (!any_entitled) co_stop(owner);
    }
  }
  dispatch(p);
  in_scheduler_ = false;
  audit_event(AuditPoint::kTick);
  // Timer-tick jitter (fault injection): the hook shifts the next tick of
  // this PCPU; with no hook the cadence is the exact slot length.
  Cycles next = slot_len_;
  if (fault_hook_) next = next + fault_hook_->tick_jitter(p);
  sim_.after(next, [this, p] { pcpu_tick(p); });
}

void Hypervisor::accounting_event() {
  if (halted_) return;  // crashed host: the accounting chain ends here
  in_scheduler_ = true;
  do_accounting();
  // Newly topped-up (unparked) VCPUs may be waiting while PCPUs idle.
  for (PcpuId i = 0; i < machine_.num_pcpus; ++i) {
    const PcpuId p = (dispatch_start_ + i) % machine_.num_pcpus;
    if (pcpus_[p].online && pcpus_[p].current == nullptr) dispatch(p);
  }
  dispatch_start_ = (dispatch_start_ + 1) % machine_.num_pcpus;
  in_scheduler_ = false;
  audit_event(AuditPoint::kAccountingEnd);
  sim_.after(machine_.accounting_cycles(), [this] { accounting_event(); });
}

// --- hypercalls --------------------------------------------------------------

void Hypervisor::do_vcrd_op(VmId id, Vcrd vcrd) {
  // Validate before the re-entrancy defer so a rejected hypercall is
  // counted exactly once. A guest (or the fault injector impersonating
  // one) may pass any VmId / any enum bit pattern; garbage must bounce
  // without touching scheduler state.
  if (halted_ || id >= vms_.size() || !vms_[id]->alive ||
      (vcrd != Vcrd::kLow && vcrd != Vcrd::kHigh)) {
    ++hypercall_rejects_;
    note_trace(sim::TraceCat::kMonitor,
               "do_vcrd_op rejected (vm=" + std::to_string(id) + " vcrd=" +
                   std::to_string(static_cast<int>(vcrd)) + ")");
    return;
  }
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vcrd] { do_vcrd_op(id, vcrd); });
    return;
  }
  Vm& v = vm(id);
  // Plausibility clamp: a HIGH claim must be backed by hardware-observable
  // spin evidence (recent yield hints). A lying guest's claim is rejected
  // before it can refresh the TTL or win gang privileges; honest spinning
  // guests yield every spin_yield_period and clear the floor easily.
  if (vcrd == Vcrd::kHigh && resilience_.vcrd_min_yields > 0) {
    const std::uint64_t recent =
        sim_.now() - v.yield_window_start <= resilience_.vcrd_check_window
            ? v.yields_in_window
            : 0;
    if (recent < resilience_.vcrd_min_yields) {
      ++v.implausible_vcrds;
      note_trace(sim::TraceCat::kMonitor,
                 v.name + " VCRD HIGH claim rejected (" +
                     std::to_string(recent) + " recent yields < " +
                     std::to_string(resilience_.vcrd_min_yields) + ")");
      return;
    }
  }
  v.vcrd_last_report = sim_.now();  // feeds the staleness TTL
  if (v.vcrd == vcrd) return;
  const Vcrd previous = v.vcrd;
  v.vcrd = vcrd;
  if (vcrd == Vcrd::kHigh) {
    ++v.vcrd_high_transitions;
    v.vcrd_high_since = sim_.now();
    note_flap(v);  // may demote a flapping guest before any relocation
  } else {
    v.vcrd_high_time += sim_.now() - v.vcrd_high_since;
  }
  note_trace(sim::TraceCat::kMonitor,
             v.name + " VCRD -> " + to_string(vcrd));
  on_vcrd_changed(v, previous);
  audit_event(AuditPoint::kVcrdOp);
}

void Hypervisor::vcpu_block(VmId id, std::uint32_t vidx) {
  // A destroyed VM's guest may still have in-flight events; its hypercalls
  // bounce here (counted) and the tombstone stays untouched. A halted
  // (crashed) host bounces everything.
  if (halted_ || id >= vms_.size() || !vms_[id]->alive ||
      vidx >= vm(id).vcpus.size()) {
    ++hypercall_rejects_;
    return;
  }
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vidx] { vcpu_block(id, vidx); });
    return;
  }
  Vcpu& v = vm(id).vcpus[vidx];
  switch (v.state) {
    case VcpuState::kBlocked:
    case VcpuState::kDestroyed:  // unreachable: alive-guarded above
      return;
    case VcpuState::kRunning: {
      const PcpuId p = v.where;
      in_scheduler_ = true;
      Vcpu* u = unmap_current(p);
      set_state(*u, VcpuState::kBlocked);
      dispatch(p);
      if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
        pcpus_[p].idle_marked = true;
        pcpus_[p].idle_since = sim_.now();
      }
      in_scheduler_ = false;
      audit_event(AuditPoint::kBlock);
      return;
    }
    case VcpuState::kRunnable: {
      const bool removed = dequeue(v.where, &v);
      assert(removed);
      (void)removed;
      set_state(v, VcpuState::kBlocked);
      audit_event(AuditPoint::kBlock);
      return;
    }
  }
}

void Hypervisor::vcpu_kick(VmId id, std::uint32_t vidx) {
  if (halted_ || id >= vms_.size() || !vms_[id]->alive ||
      vidx >= vm(id).vcpus.size()) {
    ++hypercall_rejects_;
    return;
  }
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vidx] { vcpu_kick(id, vidx); });
    return;
  }
  Vcpu& v = vm(id).vcpus[vidx];
  if (v.crashed) {
    ++ignored_kicks_;  // a crashed VCPU stays blocked forever
    return;
  }
  if (vm(id).paused) {
    // Stop-and-copy downtime window: the wake is latched, not enqueued;
    // resume_vm replays it so no work is lost across the pause.
    v.paused_pending = true;
    return;
  }
  if (v.state != VcpuState::kBlocked) return;
  set_state(v, VcpuState::kRunnable);
  // Xen-style BOOST only for UNDER VCPUs, metered and (when the limiter is
  // armed) rate-limited per VM: sleep/wake oscillation cannot farm
  // unbounded wake-priority (arXiv 1103.0759's BOOST abuse).
  v.wake_boost = v.credit > 0 && grant_boost(vm(id));
  if (!pcpus_[v.where].online) {
    // The wake home went offline while this VCPU was blocked; re-home it
    // lazily now (credit travels with the VCPU).
    const PcpuId stale = v.where;
    v.where = pick_online_home(id, stale);
    ++v.migrations;
    ++migrations_;
    note_migration(v, stale, v.where);
  }
  const PcpuId home = v.where;
  enqueue(home, &v);
  in_scheduler_ = true;
  Vcpu* cur = pcpus_[home].current;
  if (cur == nullptr) {
    dispatch(home);
  } else if (v.wake_boost && static_cast<int>(v.prio_class()) <
                                 static_cast<int>(cur->prio_class())) {
    preempt_current(home);
    dispatch(home);
  }
  in_scheduler_ = false;
  audit_event(AuditPoint::kKick);
}

// --- Algorithm 3 lines 8-16 ---------------------------------------------------

void Hypervisor::relocate_vm(Vm& v) {
  if (topo_place_active()) {
    relocate_vm_topo(v);
    note_trace(sim::TraceCat::kCosched, v.name + " relocated");
    audit_relocated(v.id);
    return;
  }
  std::vector<bool> claimed(machine_.num_pcpus, false);
  // Running VCPUs pin their PCPU.
  for (const Vcpu& c : v.vcpus)
    if (c.state == VcpuState::kRunning) claimed[c.where] = true;
  for (Vcpu& c : v.vcpus) {
    if (c.state == VcpuState::kRunning) continue;
    if (!claimed[c.where] && pcpus_[c.where].online) {
      claimed[c.where] = true;
      continue;
    }
    // Choose the least-loaded unclaimed online PCPU (lowest id breaks ties).
    PcpuId dest = machine_.num_pcpus;
    std::size_t best_load = 0;
    for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
      if (claimed[p] || !pcpus_[p].online) continue;
      const std::size_t load = pcpus_[p].runq.size();
      if (dest == machine_.num_pcpus || load < best_load) {
        dest = p;
        best_load = load;
      }
    }
    if (dest == machine_.num_pcpus) break;  // more VCPUs than PCPUs
    if (c.state == VcpuState::kRunnable) {
      const bool removed = dequeue(c.where, &c);
      assert(removed);
      (void)removed;
      enqueue(dest, &c);
      ++c.migrations;
      ++migrations_;
      note_migration(c, c.where, dest);
    }
    c.where = dest;  // blocked VCPUs just get a new wake-up home
    claimed[dest] = true;
  }
  note_trace(sim::TraceCat::kCosched, v.name + " relocated");
  audit_relocated(v.id);
}

void Hypervisor::relocate_vm_topo(Vm& v) {
  // Same contract as the flat path — pairwise-distinct online PCPUs,
  // running members pinned — but non-running members may only land inside
  // the greedily-minimal socket set, so a HIGH-VCRD gang packs within a
  // socket when it fits instead of spreading across the machine.
  const std::vector<bool> allowed = gang_socket_set(v);
  std::vector<bool> claimed(machine_.num_pcpus, false);
  for (const Vcpu& c : v.vcpus)
    if (c.state == VcpuState::kRunning) claimed[c.where] = true;
  for (Vcpu& c : v.vcpus) {
    if (c.state == VcpuState::kRunning) continue;
    if (!claimed[c.where] && pcpus_[c.where].online &&
        allowed[topo_.socket_of(c.where)]) {
      claimed[c.where] = true;
      continue;
    }
    PcpuId dest = machine_.num_pcpus;
    std::size_t best_load = 0;
    for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
      if (claimed[p] || !pcpus_[p].online) continue;
      if (!allowed[topo_.socket_of(p)]) continue;
      const std::size_t load = pcpus_[p].runq.size();
      if (dest == machine_.num_pcpus || load < best_load) {
        dest = p;
        best_load = load;
      }
    }
    if (dest == machine_.num_pcpus) break;  // more VCPUs than capacity
    if (c.state == VcpuState::kRunnable) {
      const bool removed = dequeue(c.where, &c);
      assert(removed);
      (void)removed;
      enqueue(dest, &c);
      ++c.migrations;
      ++migrations_;
      note_migration(c, c.where, dest);
    }
    c.where = dest;
    claimed[dest] = true;
  }
}

// --- fault-injection entry points --------------------------------------------

void Hypervisor::fault_pcpu_offline(PcpuId p) {
  if (p >= machine_.num_pcpus || !pcpus_[p].online) return;
  if (online_pcpus_ <= 1) {
    note_trace(sim::TraceCat::kSched,
               "P" + std::to_string(p) +
                   " offline refused (last online PCPU)");
    return;
  }
  faults_armed_ = true;
  ++pcpu_offline_events_;
  note_trace(sim::TraceCat::kSched, "P" + std::to_string(p) + " offline");
  PcpuRec& pc = pcpus_[p];
  in_scheduler_ = true;
  // Preempt whoever is running (through the normal burn/charge/requeue
  // path) so it joins the queue and is evacuated with everyone else.
  Vm* victim = nullptr;
  if (pc.current != nullptr) {
    victim = &vm(pc.current->key.vm);
    go_offline(p);
  }
  pc.online = false;
  --online_pcpus_;
  // Fewer online PCPUs means a higher weighted load per PCPU; the overload
  // governor may need to shed coscheduling before the evacuation lands.
  maybe_shed_overload();
  // Evacuate the run queue onto online PCPUs, credit intact — credit is
  // per-VCPU state and travels with the record, so conservation holds.
  const std::vector<Vcpu*> evac = pc.runq.entries();
  for (Vcpu* w : evac) {
    dequeue(p, w);
    // Near the dying PCPU: under topology-aware placement evacuees prefer
    // the sibling LLC/socket so their caches stay as warm as possible.
    const PcpuId dest = pick_online_home(w->key.vm, p);
    note_migration(*w, w->where, dest);
    w->where = dest;
    enqueue(dest, w);
    ++w->migrations;
    ++migrations_;
    ++evacuated_vcpus_;
  }
  if (!pc.idle_marked) {
    pc.idle_marked = true;
    pc.idle_since = sim_.now();
  }
  // A strict gang that lost a member (or no longer fits the machine) must
  // not keep partial boosts; release it and let stock rules re-pick.
  if (victim && strictness_ == Strictness::kStrict && !in_co_stop_ &&
      wants_cosched(*victim))
    co_stop(*victim);
  // Idle online PCPUs pick up the evacuees right away.
  for (PcpuId q = 0; q < machine_.num_pcpus; ++q)
    if (pcpus_[q].online && pcpus_[q].current == nullptr) dispatch(q);
  in_scheduler_ = false;
  audit_event(AuditPoint::kHotplug);
}

void Hypervisor::fault_pcpu_online(PcpuId p) {
  if (p >= machine_.num_pcpus || pcpus_[p].online) return;
  pcpus_[p].online = true;
  ++online_pcpus_;
  note_trace(sim::TraceCat::kSched, "P" + std::to_string(p) + " online");
  in_scheduler_ = true;
  // Load per online PCPU just fell; the governor may restore coscheduling
  // (still gated by the shed backoff).
  maybe_restore_overload();
  // Gangs that were infeasible while this PCPU was down were evacuated onto
  // shared homes; now that they fit again, spread them back out before any
  // launch (or audit pass) sees a double-booked PCPU. Under topology-aware
  // placement a gang squeezed across extra sockets repacks too.
  for (const auto& vp : vms_) {
    Vm& v = *vp;
    if (cosched_eligible(v) &&
        (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
      relocate_vm(v);
  }
  dispatch(p);  // steal work immediately instead of idling until its tick
  in_scheduler_ = false;
  audit_event(AuditPoint::kHotplug);
}

void Hypervisor::fault_crash_vcpu(VmId vm_id, std::uint32_t vidx) {
  if (vm_id >= vms_.size() || !vms_[vm_id]->alive ||
      vidx >= vm(vm_id).vcpus.size()) return;
  Vm& owner = vm(vm_id);
  Vcpu& v = owner.vcpus[vidx];
  if (v.crashed) return;
  v.crashed = true;
  faults_armed_ = true;
  note_trace(sim::TraceCat::kSched, key_str(v.key) + " crashed");
  if (v.cosched_clear_ev.valid()) {
    sim_.cancel(v.cosched_clear_ev);
    v.cosched_clear_ev = {};
  }
  v.cosched_boost = false;
  v.cosched_weak = false;
  v.wake_boost = false;
  in_scheduler_ = true;
  switch (v.state) {
    case VcpuState::kRunning: {
      const PcpuId p = v.where;
      Vcpu* u = unmap_current(p);
      set_state(*u, VcpuState::kBlocked);
      if (strictness_ == Strictness::kStrict && !in_co_stop_ &&
          cosched_eligible(owner))
        co_stop(owner);
      dispatch(p);
      if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
        pcpus_[p].idle_marked = true;
        pcpus_[p].idle_since = sim_.now();
      }
      break;
    }
    case VcpuState::kRunnable: {
      const bool removed = dequeue(v.where, &v);
      assert(removed);
      (void)removed;
      set_state(v, VcpuState::kBlocked);
      break;
    }
    case VcpuState::kBlocked:
    case VcpuState::kDestroyed:  // unreachable: alive-guarded above
      break;  // already blocked; the crashed flag pins it there
  }
  in_scheduler_ = false;
  audit_event(AuditPoint::kFault);
}

}  // namespace asman::vmm

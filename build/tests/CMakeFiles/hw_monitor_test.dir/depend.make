# Empty dependencies file for hw_monitor_test.
# This may be replaced when dependencies are built.

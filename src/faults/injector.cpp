#include "faults/injector.h"

#include <cassert>

namespace asman::faults {

void FaultInjector::SilencePort::do_vcrd_op(VmId vm, vmm::Vcrd vcrd) {
  if (silenced) {
    ++owner_.silenced_;
    return;
  }
  inner_.do_vcrd_op(vm, vcrd);
}

void FaultInjector::HangPort::vcpu_online(std::uint32_t vidx) {
  if (vidx < hung_.size() && hung_[vidx]) return;
  if (vidx < guest_online_.size()) guest_online_[vidx] = true;
  inner_->vcpu_online(vidx);
}

void FaultInjector::HangPort::vcpu_offline(std::uint32_t vidx) {
  if (vidx < hung_.size() && hung_[vidx]) return;
  if (vidx < guest_online_.size()) guest_online_[vidx] = false;
  inner_->vcpu_offline(vidx);
}

void FaultInjector::HangPort::hang(std::uint32_t vidx) {
  if (vidx >= hung_.size() || hung_[vidx]) return;
  // Tell the inner guest this VCPU went away (it will never hear from it
  // again) *before* raising the hung flag, so its own state stays sane.
  if (guest_online_[vidx]) {
    guest_online_[vidx] = false;
    inner_->vcpu_offline(vidx);
  }
  hung_[vidx] = true;
}

FaultInjector::FaultInjector(sim::Simulator& simulation, vmm::Hypervisor& hv,
                             FaultPlan plan)
    : sim_(simulation),
      hv_(hv),
      plan_(std::move(plan)),
      rng_ipi_(sim::Rng(plan_.seed).child(0x1717ULL)),
      rng_tick_(sim::Rng(plan_.seed).child(0x71C7ULL)) {}

FaultInjector::~FaultInjector() {
  // The injector may die before the hypervisor; leave no dangling seams.
  if (armed_) {
    hv_.ipi_bus().set_fault_plan(nullptr);
    hv_.set_fault_hook(nullptr);
  }
}

FaultInjector::VmPorts& FaultInjector::ports_for(VmId id) {
  for (auto& p : ports_)
    if (p.vm == id) return p;
  ports_.push_back(VmPorts{id, nullptr, nullptr});
  return ports_.back();
}

vmm::HypervisorPort& FaultInjector::hypercall_port(VmId id) {
  for (const VcrdFaultSpec& spec : plan_.vcrd) {
    if (spec.vm != id || spec.silence_after.v == 0) continue;
    VmPorts& p = ports_for(id);
    if (!p.silence) p.silence = std::make_unique<SilencePort>(*this, hv_);
    return *p.silence;
  }
  return hv_;
}

vmm::GuestPort* FaultInjector::wrap_guest(VmId id, vmm::GuestPort* inner) {
  for (const VcpuFaultSpec& spec : plan_.vcpu) {
    if (spec.vm != id || spec.kind != VcpuFaultKind::kHang) continue;
    VmPorts& p = ports_for(id);
    if (!p.hang)
      p.hang = std::make_unique<HangPort>(
          inner, static_cast<std::uint32_t>(hv_.vm(id).num_vcpus()));
    return p.hang.get();
  }
  return inner;
}

void FaultInjector::arm_vcrd(const VcrdFaultSpec& spec) {
  if (spec.vm >= hv_.num_vms()) return;
  const VmId id = spec.vm;
  if (spec.silence_after.v > 0) {
    sim_.at(spec.silence_after, [this, id] {
      for (auto& p : ports_)
        if (p.vm == id && p.silence) p.silence->silenced = true;
    });
  }
  if (spec.flap_toggles > 0 && spec.flap_period.v > 0) {
    const std::uint32_t n = spec.flap_toggles;
    sim_.at(spec.flap_start, [this, id, n] { flap_step(id, n); });
  }
  if (spec.corrupt_ops > 0 && spec.corrupt_period.v > 0) {
    const std::uint32_t n = spec.corrupt_ops;
    sim_.at(spec.corrupt_start, [this, id, n] { corrupt_step(id, n); });
  }
}

void FaultInjector::flap_step(VmId vm, std::uint32_t left) {
  if (left == 0) return;
  // Impersonate a compromised Monitoring Module: alternate HIGH/LOW at a
  // cadence no honest locality of synchronization produces. The VM's
  // current VCRD is read back so consecutive calls always toggle.
  const vmm::Vcrd next = hv_.vm(vm).vcrd == vmm::Vcrd::kHigh
                             ? vmm::Vcrd::kLow
                             : vmm::Vcrd::kHigh;
  ++flaps_;
  hv_.do_vcrd_op(vm, next);
  const auto& spec_period = [this, vm]() -> Cycles {
    for (const VcrdFaultSpec& s : plan_.vcrd)
      if (s.vm == vm && s.flap_toggles > 0) return s.flap_period;
    return Cycles{0};
  };
  const Cycles period = spec_period();
  if (period.v == 0) return;
  sim_.after(period, [this, vm, left] { flap_step(vm, left - 1); });
}

void FaultInjector::corrupt_step(VmId vm, std::uint32_t left) {
  if (left == 0) return;
  // Garbage arguments, alternating between an out-of-range VmId and an
  // out-of-range Vcrd bit pattern. The hypervisor must reject both with a
  // counted trace event (hypercall_rejects) and no state change.
  ++corrupt_;
  if ((left & 1u) != 0) {
    hv_.do_vcrd_op(static_cast<VmId>(hv_.num_vms() + 17u), vmm::Vcrd::kHigh);
  } else {
    hv_.do_vcrd_op(vm, static_cast<vmm::Vcrd>(0x5A));
  }
  const auto period = [this, vm]() -> Cycles {
    for (const VcrdFaultSpec& s : plan_.vcrd)
      if (s.vm == vm && s.corrupt_ops > 0) return s.corrupt_period;
    return Cycles{0};
  }();
  if (period.v == 0) return;
  sim_.after(period, [this, vm, left] { corrupt_step(vm, left - 1); });
}

void FaultInjector::arm() {
  assert(!armed_ && "arm() must be called exactly once");
  armed_ = true;
  hv_.arm_degradation();
  if (plan_.ipi.active()) hv_.ipi_bus().set_fault_plan(this);
  if (plan_.tick.active()) hv_.set_fault_hook(this);

  for (const HotplugEvent& ev : plan_.hotplug) {
    const PcpuId p = ev.pcpu;
    sim_.at(ev.at, [this, p] {
      ++hotplugs_;
      hv_.fault_pcpu_offline(p);
    });
    if (ev.duration.v > 0) {
      sim_.at(ev.at + ev.duration, [this, p] {
        ++hotplugs_;
        hv_.fault_pcpu_online(p);
      });
    }
  }

  for (const VcrdFaultSpec& spec : plan_.vcrd) arm_vcrd(spec);

  for (const VcpuFaultSpec& spec : plan_.vcpu) {
    if (spec.vm >= hv_.num_vms()) continue;
    if (spec.vidx >= hv_.vm(spec.vm).num_vcpus()) continue;
    const VmId id = spec.vm;
    const std::uint32_t vidx = spec.vidx;
    if (spec.kind == VcpuFaultKind::kCrash) {
      sim_.at(spec.at, [this, id, vidx] {
        ++crashes_;
        hv_.fault_crash_vcpu(id, vidx);
      });
    } else {
      sim_.at(spec.at, [this, id, vidx] {
        for (auto& p : ports_) {
          if (p.vm != id || !p.hang) continue;
          ++hangs_;
          p.hang->hang(vidx);
        }
      });
    }
  }
}

hw::IpiDecision FaultInjector::on_send(PcpuId from, PcpuId to,
                                       std::uint32_t vector) {
  (void)from;
  (void)to;
  (void)vector;
  hw::IpiDecision d;
  const IpiFaultSpec& s = plan_.ipi;
  if (s.drop_p > 0 && rng_ipi_.bernoulli(s.drop_p)) {
    d.drop = true;
    return d;
  }
  if (s.dup_p > 0 && rng_ipi_.bernoulli(s.dup_p)) d.duplicate = true;
  if (s.delay_p > 0 && s.max_delay.v > 0 && rng_ipi_.bernoulli(s.delay_p))
    d.extra_delay = Cycles{rng_ipi_.uniform(1, s.max_delay.v)};
  return d;
}

Cycles FaultInjector::tick_jitter(PcpuId p) {
  (void)p;
  if (plan_.tick.max_jitter.v == 0) return Cycles{0};
  return Cycles{rng_tick_.next_below(plan_.tick.max_jitter.v + 1)};
}

}  // namespace asman::faults

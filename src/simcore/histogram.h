// Log2-bucketed histogram for cycle-valued samples.
//
// The paper reports spinlock waiting times bucketed by powers of two
// (">2^10 cycles", ">2^20 cycles", the 2^10..2^30 scatter plots of Figs 2
// and 8). This histogram mirrors that: bucket k holds samples with
// floor(log2(v)) == k. Raw samples can optionally be retained for
// scatter-style output.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.h"

namespace asman::sim {

class Log2Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  explicit Log2Histogram(bool keep_samples = false,
                         std::size_t max_samples = 1u << 20)
      : keep_samples_(keep_samples), max_samples_(max_samples) {}

  void add(Cycles v) {
    ++counts_[log2_floor(v)];
    ++total_;
    sum_ += v.v;
    if (v > max_) max_ = v;
    if (keep_samples_ && samples_.size() < max_samples_) samples_.push_back(v);
  }

  void merge(const Log2Histogram& o) {
    for (unsigned i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    if (keep_samples_) {
      for (Cycles s : o.samples_) {
        if (samples_.size() >= max_samples_) break;
        samples_.push_back(s);
      }
    }
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(unsigned log2_bucket) const {
    return log2_bucket < kBuckets ? counts_[log2_bucket] : 0;
  }
  /// Number of samples strictly greater than 2^exp cycles (paper's
  /// "over-threshold" counting convention).
  std::uint64_t count_above(unsigned exp) const;

  Cycles max_value() const { return max_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  const std::vector<Cycles>& samples() const { return samples_; }

  /// Multi-line ASCII rendering ("2^k | count | bar").
  std::string render(unsigned min_bucket = 8, unsigned max_bucket = 30) const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_{0};
  std::uint64_t sum_{0};
  Cycles max_{0};
  bool keep_samples_;
  std::size_t max_samples_;
  std::vector<Cycles> samples_;
};

}  // namespace asman::sim

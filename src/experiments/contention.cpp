#include "experiments/contention.h"

#include <memory>
#include <string>
#include <utility>

#include "experiments/chaos.h"
#include "hw/memsys/footprint.h"
#include "workloads/synthetic.h"

namespace asman::experiments {

namespace {

Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

std::uint64_t mib(std::uint64_t n) { return n << 20; }

}  // namespace

Scenario contention_scenario(core::SchedulerKind sched, std::uint64_t seed,
                             bool pressure_aware, std::uint32_t n_vms) {
  using hw::memsys::make_footprint;
  if (n_vms < 4) n_vms = 4;
  Scenario sc = chaos_base_scenario(sched, seed, /*n_vms=*/3);
  sc.machine.num_pcpus = 8;
  sc.machine.topology = hw::Topology::paper();
  sc.machine.llc_bytes = kContentionLlcBytes;
  sc.machine.socket_mem_bw_bytes_per_s = kContentionSocketBw;
  sc.pressure_aware = pressure_aware;

  // Footprints for the chaos-base tenants. The gang candidate is a
  // synchronization-heavy code with a moderate shared structure; the base
  // hog becomes a cache-hungry analytics tenant.
  sc.vms[1].workload = [](sim::Simulator&, std::uint64_t s) {
    auto w = std::make_unique<workloads::LockHammerWorkload>(
        4, 1'000'000, us(120), us(15), s);
    w->set_footprint(make_footprint(mib(3), 2'000'000'000ull, 600));
    return w;
  };
  sc.vms[2].workload = [](sim::Simulator&, std::uint64_t s) {
    auto w = std::make_unique<workloads::CpuHogWorkload>(2, us(200), s);
    w->set_footprint(make_footprint(mib(4), 3'000'000'000ull, 400));
    return w;
  };

  // The streaming tenant: its 8 MiB working set overflows any single
  // 6 MiB LLC, but split across two domains its 4 MiB per-VCPU shares
  // fit — contention here is entirely a placement outcome, which is what
  // the aware-vs-blind comparison measures.
  VmSpec stream;
  stream.name = "Stream";
  stream.weight = 256;
  stream.vcpus = 2;
  stream.workload = [](sim::Simulator&, std::uint64_t s) {
    auto w = std::make_unique<workloads::CpuHogWorkload>(2, us(200), s);
    w->set_footprint(make_footprint(mib(8), 5'000'000'000ull, 200));
    return w;
  };
  sc.vms.push_back(std::move(stream));

  // Extra background hogs with small-but-nonzero footprints: enough VMs
  // that LLC domains fill and the placer's spread decision matters.
  for (std::uint32_t i = 4; i < n_vms; ++i) {
    VmSpec extra;
    extra.name = "Hog" + std::to_string(i - 2);
    extra.weight = 64;
    extra.vcpus = 1;
    extra.workload = [](sim::Simulator&, std::uint64_t s) {
      auto w = std::make_unique<workloads::CpuHogWorkload>(1, us(200), s);
      w->set_footprint(make_footprint(mib(2), 1'500'000'000ull, 500));
      return w;
    };
    sc.vms.push_back(std::move(extra));
  }
  return sc;
}

}  // namespace asman::experiments

// Churn scenarios: seeded runtime VM lifecycle storms for tests, the soak
// harness and demos.
//
// A churn scenario extends the chaos base host (Dom0, the gang candidate
// as VM 1, a hog) with an idle "Elastic" VM (the resize target) and a
// pre-generated, seeded schedule of hot creates, destroys and resizes.
// The whole schedule is drawn up front from its own SplitMix64 stream, so
// the same (scheduler, seed, config) triple reproduces bit-identically —
// and composing a chaos class on top (churn_chaos_scenario) keeps that
// property, which is what the soak harness sweeps.
#pragma once

#include <cstdint>

#include "experiments/chaos.h"
#include "experiments/scenario.h"

namespace asman::experiments {

struct ChurnConfig {
  /// Hot creates ("Churn1".."ChurnN"): alternating 1–2 VCPU hog and idle
  /// tenants arriving throughout the run.
  std::uint32_t arrivals{6};
  /// How many of the arrivals are destroyed again before the horizon.
  std::uint32_t departures{3};
  /// resize_vm operations cycling the Elastic VM through 1–4 VCPUs.
  std::uint32_t resizes{4};
  /// Destroy the gang candidate mid-run (the mid-gang destruction path:
  /// the gang aborts cleanly and later fault ops against it must bounce).
  bool destroy_gang{true};
  /// Admission/overload knobs for the run (default: admission disabled).
  vmm::AdmissionConfig admission{};
};

/// Fault-free churn over the chaos base host.
Scenario churn_scenario(core::SchedulerKind sched, std::uint64_t seed = 1,
                        const ChurnConfig& cfg = {});

/// Churn composed with one chaos fault class — the soak harness's unit of
/// work. Same layout, so the class's fault plan targets the same VMs.
Scenario churn_chaos_scenario(core::SchedulerKind sched, ChaosClass c,
                              std::uint64_t seed = 1,
                              const ChurnConfig& cfg = {});

/// Churn against a capped host: enough arrivals to saturate the admission
/// controller, so the run must show counted rejections (and typically an
/// overload shed) while existing VMs' credit shares stay untouched.
Scenario saturated_churn_scenario(core::SchedulerKind sched,
                                  std::uint64_t seed = 1);

}  // namespace asman::experiments

// credit-flow: flow-sensitive conservation proof for credit mutations.
//
// Every write to a VCPU's credit field must be one of three shapes, each
// with its own obligation, checked on ALL control-flow paths (early
// returns and throw paths included):
//
//   (a) self-referential delta  (`v.credit = v.credit - d`, `+=`, `-=`):
//       must be saturated in the same statement (std::max/std::min against
//       a cap), so a runaway workload cannot push a balance past the cap
//       between accounting periods.
//   (b) zero-drain (`v.credit = 0`): only legal as a tombstone drain —
//       every entry->write path must carry kDestroyed evidence, i.e. pass
//       a statement mentioning the destroyed state.
//   (c) redistribution (plain `=` from a computed pool): must sit inside
//       an accounting window — audit_event(kAccountingBegin) dominates the
//       write and audit_minted post-dominates it, so the runtime auditor's
//       conservation ledger sees exactly the minted delta. One alternative
//       bracketing is accepted: audit_seeded post-dominating the write
//       (migration seeding). Seeding needs no prior pool snapshot because
//       the auditor re-verifies the whole split from the transferred pool,
//       not from a delta against a baseline.
//
// When an obligation fails the finding carries the witness path, so the
// report shows the concrete escape route, not just the mutation site.
#include <string>
#include <vector>

#include "analyzer.h"
#include "flow.h"

namespace asman_lint {

namespace {

bool node_has_ident(const CfgNode& n, const std::vector<Token>& toks,
                    const char* ident) {
  for (std::size_t i = n.tok_begin; i < n.tok_end && i < toks.size(); ++i)
    if (toks[i].kind == Tok::kIdent && toks[i].text == ident) return true;
  return false;
}

bool is_assign_op(const Token& t) {
  if (t.kind != Tok::kPunct) return false;
  return t.text == "=" || t.text == "+=" || t.text == "-=" ||
         t.text == "*=" || t.text == "/=" || t.text == "%=";
}

}  // namespace

void check_credit_flow(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;
  const TransitionSpec& spec = vcpu_transition_spec(ctx.options);
  // The spec's enumerator universe makes default-less exhaustive switches
  // on VcpuState bypass-free; an unreadable spec degrades gracefully (the
  // state-machine check reports the spec error once).
  const std::vector<std::string>& universe = spec.states;

  for (const FunctionSpan& fn : ctx.functions.spans()) {
    Cfg cfg;  // built lazily: most functions never touch credit
    bool have_cfg = false;

    for (std::size_t i = fn.begin; i + 1 < fn.end && i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || t[i].text != "credit") continue;
      if (i == 0 || t[i - 1].kind != Tok::kPunct ||
          (t[i - 1].text != "." && t[i - 1].text != "->"))
        continue;
      const Token& op = t[i + 1];
      if (!is_assign_op(op)) continue;
      const int line = t[i].line;
      const StmtRange stmt = statement_around(t, i);

      // Statement-local scans.
      bool rhs_reads_credit = false;
      bool saturated = false;
      bool rhs_is_zero = false;
      {
        std::size_t rhs = i + 2;  // first RHS token
        if (rhs < stmt.end && t[rhs].kind == Tok::kNumber &&
            t[rhs].text == "0" && rhs + 1 < stmt.end &&
            t[rhs + 1].kind == Tok::kPunct && t[rhs + 1].text == ";")
          rhs_is_zero = true;
        for (std::size_t j = rhs; j < stmt.end && j < t.size(); ++j) {
          if (t[j].kind != Tok::kIdent) continue;
          if (t[j].text == "credit" && t[j - 1].kind == Tok::kPunct &&
              (t[j - 1].text == "." || t[j - 1].text == "->"))
            rhs_reads_credit = true;
          if (t[j].text == "max" || t[j].text == "min" ||
              t[j].text.find("cap") != std::string::npos)
            saturated = true;
        }
      }

      const bool self_delta = op.text != "=" || rhs_reads_credit;

      if (self_delta) {
        // Shape (a): purely statement-scoped — saturation must live in the
        // same expression, where the reader (and the auditor) can see it.
        if (!saturated) {
          ctx.report(line, "credit-flow",
                     "unsaturated credit delta: self-referential credit "
                     "update without std::max/std::min saturation against a "
                     "cap (see Hypervisor::charge for the required shape)");
        }
        continue;
      }

      if (!have_cfg) {
        cfg = build_cfg(t, fn.begin, fn.end, universe);
        have_cfg = true;
      }
      const std::size_t node = cfg.node_of(i);
      if (node == Cfg::npos) continue;

      if (rhs_is_zero) {
        // Shape (b): tombstone drain. Destroyed-evidence must dominate.
        auto escape = path_to_avoiding(cfg, node, [&](const CfgNode& n) {
          return node_has_ident(n, t, "kDestroyed");
        });
        if (escape) {
          Finding f;
          f.file = ctx.unit.display_path;
          f.line = line;
          f.check = "credit-flow";
          f.message =
              "credit zero-drain reachable without kDestroyed evidence: "
              "some path reaches this `credit = 0` without establishing "
              "that the VCPU is being destroyed";
          f.trace = trace_of_path(cfg, *escape, t);
          ctx.report(std::move(f));
        }
        continue;
      }

      // Migration-seeding variant of shape (c): if audit_seeded
      // post-dominates the write, the runtime auditor re-verifies the full
      // split from the transferred pool on every exit path — no snapshot
      // bracket required.
      if (!path_from_avoiding(cfg, node, [&](const CfgNode& n) {
            return node_has_ident(n, t, "audit_seeded");
          }))
        continue;

      // Shape (c): redistribution. Must be bracketed by the accounting
      // audit window on every path.
      auto before = path_to_avoiding(cfg, node, [&](const CfgNode& n) {
        return node_has_ident(n, t, "kAccountingBegin");
      });
      if (before) {
        Finding f;
        f.file = ctx.unit.display_path;
        f.line = line;
        f.check = "credit-flow";
        f.message =
            "credit redistribution not dominated by "
            "audit_event(kAccountingBegin): a path reaches this write "
            "before the accounting pool snapshot";
        f.trace = trace_of_path(cfg, *before, t);
        ctx.report(std::move(f));
        continue;
      }
      auto after = path_from_avoiding(cfg, node, [&](const CfgNode& n) {
        return node_has_ident(n, t, "audit_minted");
      });
      if (after) {
        Finding f;
        f.file = ctx.unit.display_path;
        f.line = line;
        f.check = "credit-flow";
        f.message =
            "credit redistribution can escape without audit_minted: a path "
            "(early return or throw) leaves the function before the minted "
            "delta is reported to the conservation ledger";
        f.trace = trace_of_path(cfg, *after, t);
        ctx.report(std::move(f));
      }
    }
  }
}

}  // namespace asman_lint

// Reduced-scale §5.3 shape assertions (full-scale versions live in
// bench/fig11_multivm4 and bench/fig12_multivm6): with concurrent and
// high-throughput VMs sharing a host in work-conserving mode,
// coscheduling must rescue the concurrent VMs without starving anyone.
#include <gtest/gtest.h>

#include "experiments/paper.h"
#include "experiments/scenario.h"
#include "workloads/npb.h"
#include "workloads/speccpu.h"

namespace asman::experiments {
namespace {

WorkloadFactory mini_lu(std::uint64_t rounds) {
  return [rounds](sim::Simulator& s, std::uint64_t seed) {
    workloads::PhaseParams p =
        workloads::npb_params(workloads::NpbBenchmark::kLU);
    p.steps /= 6;
    p.rounds = rounds;
    return std::make_unique<workloads::PhaseWorkload>(s, "LU/6", p, seed);
  };
}

WorkloadFactory mini_cpu(std::uint64_t rounds) {
  return [rounds](sim::Simulator& s, std::uint64_t seed) {
    workloads::SpecCpuParams p;
    p.work_per_copy = sim::kDefaultClock.from_seconds_f(0.4);
    p.rounds = rounds;
    return std::make_unique<workloads::SpecCpuRateWorkload>(s, "mini-cpu", p,
                                                            seed);
  };
}

struct MixResult {
  double cpu_round;
  double lu_round;
};

MixResult run_mix(core::SchedulerKind k) {
  // 4 VMs x 4 VCPUs on 8 PCPUs: 2x overcommit, like the paper's Fig 11(a).
  Scenario sc = multi_vm_scenario(
      k,
      {{"cpu", mini_cpu(20)},
       {"cpu", mini_cpu(20)},
       {"LU", mini_lu(20)},
       {"LU", mini_lu(20)}},
      {false, false, true, true}, 3);
  const RunResult r = run_scenario(sc);
  return {r.vms[1].mean_round_seconds(3), r.vms[3].mean_round_seconds(3)};
}

class MultiVmShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    credit_ = new MixResult(run_mix(core::SchedulerKind::kCredit));
    asman_ = new MixResult(run_mix(core::SchedulerKind::kAsman));
    con_ = new MixResult(run_mix(core::SchedulerKind::kCon));
  }
  static MixResult* credit_;
  static MixResult* asman_;
  static MixResult* con_;
};

MixResult* MultiVmShape::credit_ = nullptr;
MixResult* MultiVmShape::asman_ = nullptr;
MixResult* MultiVmShape::con_ = nullptr;

TEST_F(MultiVmShape, EverybodyMakesProgressUnderAllSchedulers) {
  for (const MixResult* r : {credit_, asman_, con_}) {
    EXPECT_GT(r->cpu_round, 0.0);
    EXPECT_GT(r->lu_round, 0.0);
  }
}

TEST_F(MultiVmShape, CoschedulingRescuesTheConcurrentVm) {
  EXPECT_LT(asman_->lu_round, credit_->lu_round * 0.85);
  EXPECT_LT(con_->lu_round, credit_->lu_round * 0.85);
}

TEST_F(MultiVmShape, ThroughputVmTaxStaysBounded) {
  // The paper's key §5.3 claim: coscheduling costs the high-throughput
  // neighbour only a small amount (ASMan <= ~8 %, CON <= ~18 %). Allow
  // slack for the reduced scale.
  EXPECT_LT(asman_->cpu_round, credit_->cpu_round * 1.25);
  EXPECT_LT(con_->cpu_round, credit_->cpu_round * 1.35);
}

TEST(MultiVmFairness, FourTenantsShareEquallyLongRun) {
  // Four equal-weight spin-heavy VMs in WC mode: observed online shares
  // within a tolerance band of 1/4 of the machine each.
  Scenario sc = multi_vm_scenario(
      core::SchedulerKind::kAsman,
      {{"a", mini_lu(50)}, {"b", mini_lu(50)}, {"c", mini_lu(50)},
       {"d", mini_lu(50)}},
      {true, true, true, true}, 2);
  sc.horizon = sim::kDefaultClock.from_seconds_f(20.0);
  const RunResult r = run_scenario(sc);
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_NEAR(r.vms[i].observed_online_rate, 0.5, 0.12)
        << "VM " << i << " share off (4 VMs x 4 VCPUs on 8 PCPUs)";
  }
}

}  // namespace
}  // namespace asman::experiments

// Deterministic memory-system contention engine (docs/MODEL.md §2.8).
//
// Once per accounting period the hypervisor feeds this pure function the
// authoritative placement state — each VM's footprint and its VCPUs'
// home LLC/socket — and finite capacities (LLC bytes per domain, memory
// bandwidth per socket). It computes:
//
//   * per-LLC occupancy: each VM demands its working set split equally
//     over its VCPU homes; when an LLC's total demand exceeds capacity
//     the capacity is partitioned footprint-proportionally with a
//     largest-remainder pass, so Σ granted == min(capacity, Σ demand)
//     EXACTLY — the partition half of the pressure-conservation
//     invariant,
//   * per-(VM, LLC) extra miss rate: the footprint's piecewise curve
//     evaluated at the achieved residency, minus the standalone baseline,
//   * per-socket bandwidth demand (misses drive bus traffic) and the
//     stall fraction when a socket's demand overshoots its capacity.
//
// Everything is integer arithmetic widened through __int128; no RNG is
// drawn and no float is formed, so the charging stream is untouched and
// aware-vs-blind runs differ only by policy. The same function is called
// by the hypervisor to apply the slowdown and by the auditor to recompute
// the partition from scratch — one definition, two consumers, the same
// shared-spec idiom as vmm/state_spec.h.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounds_spec.h"
#include "hw/memsys/footprint.h"
#include "hw/topology.h"

namespace asman::hw::memsys {

/// Slowdown cost of contention-induced cache misses: parts-per-million of
/// cycles degraded per permille of extra misses. 400 ppm/permille means a
/// workload pushed from 10 % to 60 % misses loses 20 % of its cycles.
inline constexpr std::uint32_t kSlowdownPpmPerExtraMissPermille = 400;

/// Ceiling on the combined (LLC + bandwidth) slowdown: even a thrashing
/// VCPU keeps at least 20 % of its cycles effective.
inline constexpr std::uint32_t kMaxSlowdownPpm = 800'000;

// Both constants are pinned as (exact) bounds-spec entries so the
// value-range proof prices ppm math with the real values.
static_assert(
    core::bounds_of(core::field::kSlowdownPpmPerExtraMissPermille)->lo ==
        kSlowdownPpmPerExtraMissPermille &&
    core::bounds_of(core::field::kSlowdownPpmPerExtraMissPermille)->hi ==
        kSlowdownPpmPerExtraMissPermille);
static_assert(core::bounds_of(core::field::kMaxSlowdownPpm)->lo ==
                  kMaxSlowdownPpm &&
              core::bounds_of(core::field::kMaxSlowdownPpm)->hi ==
                  kMaxSlowdownPpm);

/// One VM's placement as the engine sees it. `fp == nullptr` (or a zero
/// footprint) contributes nothing; vcpu_llc/vcpu_socket are the home
/// domains of every VCPU (blocked VCPUs keep their data resident, so
/// their wake homes count).
struct VmLoad {
  const MemFootprint* fp{nullptr};
  std::vector<std::uint32_t> vcpu_llc;
  std::vector<std::uint32_t> vcpu_socket;
};

/// The engine's published result for one accounting period.
struct ContentionPass {
  std::vector<std::uint64_t> llc_demand;   // per LLC, bytes demanded
  std::vector<std::uint64_t> llc_granted;  // per LLC, bytes granted
  std::vector<std::uint64_t> socket_bw_demand;  // per socket, bytes/s
  std::vector<std::uint32_t> socket_bw_ppm;     // per socket, stall ppm
  // Occupancy partition, indexed [vm][llc]; granted is a partition of the
  // demand matrix (granted <= demand elementwise, columns sum to
  // llc_granted exactly).
  std::vector<std::vector<std::uint64_t>> vm_llc_demand;
  std::vector<std::vector<std::uint64_t>> vm_llc_granted;
  // Extra misses (permille) for a VCPU of [vm] homed on [llc].
  std::vector<std::vector<std::uint32_t>> vm_llc_extra_miss;

  void clear() {
    llc_demand.clear();
    llc_granted.clear();
    socket_bw_demand.clear();
    socket_bw_ppm.clear();
    vm_llc_demand.clear();
    vm_llc_granted.clear();
    vm_llc_extra_miss.clear();
  }
};

/// Working-set share VCPU `idx` of an `n`-VCPU VM parks on its home LLC:
/// truncating equal split with the remainder pinned on VCPU 0, so the
/// shares sum to `ws` exactly (the demand matrix must itself be exact for
/// the partition invariant to mean anything). Shared with the scheduler's
/// steal gate and placement spread so policy and engine agree byte-for-byte.
inline std::uint64_t vcpu_ws_share(std::uint64_t ws, std::size_t n,
                                   std::size_t idx) {
  if (n == 0) return 0;
  const std::uint64_t per = ws / n;
  return idx == 0 ? per + ws % n : per;
}

/// Compute one period's occupancy partition and bandwidth pressure.
/// `socket_bw_bytes_per_s == 0` models infinite bandwidth (the bandwidth
/// term stays zero); `llc_bytes` must be > 0 for the call to make sense
/// (the hypervisor's gate guarantees it).
void compute_contention(const Topology& topo, std::uint64_t llc_bytes,
                        std::uint64_t socket_bw_bytes_per_s,
                        const std::vector<VmLoad>& vms, ContentionPass& out);

/// Combined per-VCPU slowdown in ppm for a VCPU with `extra_miss`
/// permille of contention misses on a socket stalling `bw_ppm`: the sum,
/// saturated at kMaxSlowdownPpm.
inline std::uint32_t slowdown_ppm(std::uint32_t extra_miss,
                                  std::uint32_t bw_ppm) {
  const std::uint64_t s =
      static_cast<std::uint64_t>(extra_miss) * kSlowdownPpmPerExtraMissPermille +
      bw_ppm;
  return s > kMaxSlowdownPpm ? kMaxSlowdownPpm
                             : static_cast<std::uint32_t>(s);
}

/// Cycles degraded out of `busy` at `ppm` slowdown: an __int128-widened
/// floor, so degraded + effective == busy holds exactly by construction.
inline std::uint64_t degraded_cycles(std::uint64_t busy, std::uint32_t ppm) {
  return static_cast<std::uint64_t>(static_cast<__int128>(busy) * ppm /
                                    1'000'000);
}

}  // namespace asman::hw::memsys

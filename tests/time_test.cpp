#include "simcore/time.h"

#include <gtest/gtest.h>

namespace asman::sim {
namespace {

TEST(Cycles, ArithmeticAndComparison) {
  Cycles a{100}, b{40};
  EXPECT_EQ((a + b).v, 140u);
  EXPECT_EQ((a - b).v, 60u);
  EXPECT_EQ((a * 3).v, 300u);
  EXPECT_EQ((a / 3).v, 33u);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
  a += b;
  EXPECT_EQ(a.v, 140u);
  a -= b;
  EXPECT_EQ(a.v, 100u);
}

TEST(Cycles, Ratio) {
  EXPECT_DOUBLE_EQ(Cycles{50}.ratio(Cycles{200}), 0.25);
  EXPECT_DOUBLE_EQ(Cycles{50}.ratio(Cycles{0}), 0.0);
}

TEST(Cycles, SaturatingSub) {
  EXPECT_EQ(saturating_sub(Cycles{10}, Cycles{4}).v, 6u);
  EXPECT_EQ(saturating_sub(Cycles{4}, Cycles{10}).v, 0u);
  EXPECT_EQ(saturating_sub(Cycles{4}, Cycles{4}).v, 0u);
}

TEST(ClockDomain, Conversions) {
  constexpr ClockDomain clk{2'000'000'000ULL};
  EXPECT_EQ(clk.from_ms(10).v, 20'000'000ULL);
  EXPECT_EQ(clk.from_us(5).v, 10'000ULL);
  EXPECT_DOUBLE_EQ(clk.to_seconds(Cycles{2'000'000'000ULL}), 1.0);
  EXPECT_DOUBLE_EQ(clk.to_ms(Cycles{2'000'000ULL}), 1.0);
  EXPECT_EQ(clk.from_seconds_f(0.5).v, 1'000'000'000ULL);
}

TEST(ClockDomain, DefaultClockIsPaperMachine) {
  EXPECT_EQ(kDefaultClock.hz(), 2'330'000'000ULL);
}

TEST(Log2Floor, PowersAndBetween) {
  EXPECT_EQ(log2_floor(Cycles{0}), 0u);
  EXPECT_EQ(log2_floor(Cycles{1}), 0u);
  EXPECT_EQ(log2_floor(Cycles{2}), 1u);
  EXPECT_EQ(log2_floor(Cycles{3}), 1u);
  EXPECT_EQ(log2_floor(Cycles{1024}), 10u);
  EXPECT_EQ(log2_floor(Cycles{1ULL << 20}), 20u);
  EXPECT_EQ(log2_floor(Cycles{(1ULL << 20) + 1}), 20u);
  EXPECT_EQ(log2_floor(Cycles{(1ULL << 21) - 1}), 20u);
}

TEST(Pow2Cycles, MatchesShift) {
  for (unsigned e = 0; e < 40; ++e) EXPECT_EQ(pow2_cycles(e).v, 1ULL << e);
}

TEST(FormatCycles, Units) {
  EXPECT_EQ(format_cycles(kDefaultClock.from_seconds_f(2.0)), "2.000s");
  EXPECT_EQ(format_cycles(kDefaultClock.from_ms(3)), "3.000ms");
  EXPECT_EQ(format_cycles(Cycles{100}), "100c");
}

class Log2FloorProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(Log2FloorProperty, InverseOfPow2) {
  const unsigned e = GetParam();
  EXPECT_EQ(log2_floor(pow2_cycles(e)), e);
  if (e > 0) {
    EXPECT_EQ(log2_floor(Cycles{(1ULL << e) - 1}), e - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllExponents, Log2FloorProperty,
                         ::testing::Range(1u, 63u));

}  // namespace
}  // namespace asman::sim

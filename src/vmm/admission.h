// Admission control and overload protection for runtime VM lifecycle.
//
// The admission controller bounds the total weighted VCPU load the host
// accepts: a VM contributes num_vcpus x (weight / kReferenceWeight), and
// create_vm / resize_vm requests that would push the per-online-PCPU load
// above `max_vcpus_per_pcpu` are rejected (counted + traced, existing VMs
// untouched). Below the hard cap sits the overload governor: when load
// crosses `shed_level` x cap the host sheds coscheduling eligibility —
// every gang falls back to stock credit treatment via the same
// cosched_eligible gate graceful degradation uses — and restores it, after
// a backoff, once load falls back under `restore_level` x cap. Fairness
// (credit shares) is never governed; only the gang machinery is shed.
// See docs/MODEL.md "VM lifecycle & admission".
#pragma once

#include <cstdint>

#include "core/bounds_spec.h"
#include "simcore/time.h"

namespace asman::vmm {

/// Weight that counts as exactly 1.0 VCPU of load per VCPU (Xen's default
/// VM weight). A weight-128 VM's VCPUs each contribute 0.5.
inline constexpr std::uint32_t kReferenceWeight = 256;
// Pinned as an (exact) bounds-spec entry; see src/core/bounds_spec.h.
static_assert(core::bounds_of(core::field::kReferenceWeight)->lo ==
                  kReferenceWeight &&
              core::bounds_of(core::field::kReferenceWeight)->hi ==
                  kReferenceWeight);

struct AdmissionConfig {
  /// Hard cap on weighted VCPUs per *online* PCPU (0 = admission control
  /// and the overload governor are both disabled).
  double max_vcpus_per_pcpu{0.0};
  /// Overload governor sheds coscheduling when load exceeds this fraction
  /// of the cap...
  double shed_level{0.85};
  /// ...and restores it once load falls to this fraction or below.
  double restore_level{0.60};
  /// Minimum time between a shed and the earliest restore (0 = derive
  /// 12 slots at start(), mirroring ResilienceConfig::demote_backoff).
  sim::Cycles restore_backoff{0};
};

}  // namespace asman::vmm

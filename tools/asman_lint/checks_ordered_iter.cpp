// ordered-iteration: std::unordered_{map,set} iteration order is a function
// of hashing, bucket count, and insertion history — not of the seed. A loop
// over one that writes into fingerprinted state (RunResult, traces, the
// credit pool, the event queue) makes replay order-dependent. Membership
// tests and lookups are fine; iteration that escapes is not.
#include <string>
#include <unordered_set>
#include <vector>

#include "analyzer.h"

namespace asman_lint {

namespace {

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Calls/operators in a loop body that let per-element work escape the loop:
// container mutation, trace/stat emission, scheduling.
const std::unordered_set<std::string>& sink_calls() {
  static const std::unordered_set<std::string> s{
      "push_back", "emplace_back", "push",   "insert", "emplace",
      "trace",     "record",       "post",   "emit",   "schedule",
      "append",    "add",          "write",  "flag",   "accumulate"};
  return s;
}

bool body_escapes(const std::vector<Token>& t, std::size_t b, std::size_t e) {
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind == Tok::kPunct &&
        (t[i].text == "=" || t[i].text == "+=" || t[i].text == "-=" ||
         t[i].text == "|=" || t[i].text == "&=" || t[i].text == "^=" ||
         t[i].text == "++" || t[i].text == "--"))
      return true;
    if (t[i].kind == Tok::kIdent && sink_calls().count(t[i].text) != 0 &&
        i + 1 < e && t[i + 1].kind == Tok::kPunct && t[i + 1].text == "(")
      return true;
    if (t[i].kind == Tok::kIdent && t[i].text == "return") return true;
  }
  return false;
}

}  // namespace

void check_ordered_iteration(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;

  // Pass 1: names declared with an unordered container type, plus type
  // aliases of them (`using Index = std::unordered_map<...>;`).
  std::unordered_set<std::string> unordered_vars;
  std::unordered_set<std::string> unordered_aliases;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const bool direct = is_unordered_name(t[i].text);
    const bool via_alias = unordered_aliases.count(t[i].text) != 0;
    if (!direct && !via_alias) continue;
    // Alias definition: using NAME = [std::]unordered_map<...>
    if (direct && i >= 3) {
      std::size_t j = i;  // token just past the '=' going backwards
      if (t[j - 1].kind == Tok::kPunct && t[j - 1].text == "::" && j >= 2)
        j -= 2;  // skip the std:: qualifier
      if (j >= 3 && t[j - 1].kind == Tok::kPunct && t[j - 1].text == "=" &&
          t[j - 2].kind == Tok::kIdent && t[j - 3].kind == Tok::kIdent &&
          t[j - 3].text == "using") {
        unordered_aliases.insert(t[j - 2].text);
      }
    }
    std::size_t after = i + 1;
    if (direct && after < t.size() && t[after].kind == Tok::kPunct &&
        t[after].text == "<") {
      const std::size_t close = match_forward(t, after);
      if (close >= t.size()) continue;
      after = close + 1;
    }
    // Skip references/pointers/qualifiers between type and declared name.
    while (after < t.size() &&
           ((t[after].kind == Tok::kPunct &&
             (t[after].text == "&" || t[after].text == "*")) ||
            (t[after].kind == Tok::kIdent && (t[after].text == "const"))))
      ++after;
    if (after < t.size() && t[after].kind == Tok::kIdent &&
        !is_unordered_name(t[after].text))
      unordered_vars.insert(t[after].text);
  }

  // Pass 2: range-for over an unordered container, or iterator loops that
  // call .begin() on one inside a for-header.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == Tok::kIdent && t[i].text == "for")) continue;
    if (!(t[i + 1].kind == Tok::kPunct && t[i + 1].text == "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open);
    if (close >= t.size()) continue;

    // Find the range-for ':' at top paren depth ('::' is a distinct token,
    // so a bare ':' is unambiguous).
    std::size_t colon = t.size();
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind != Tok::kPunct) continue;
      if (t[j].text == "(" || t[j].text == "[") ++depth;
      else if (t[j].text == ")" || t[j].text == "]") --depth;
      else if (t[j].text == ":" && depth == 0) {
        colon = j;
        break;
      }
    }

    std::string offender;
    if (colon < t.size()) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind == Tok::kIdent &&
            (unordered_vars.count(t[j].text) != 0 ||
             is_unordered_name(t[j].text))) {
          offender = t[j].text;
          break;
        }
      }
    } else {
      // Classic iterator loop: look for `<name>.begin(` in the header.
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (t[j].kind == Tok::kIdent && unordered_vars.count(t[j].text) != 0 &&
            t[j + 1].kind == Tok::kPunct &&
            (t[j + 1].text == "." || t[j + 1].text == "->") &&
            t[j + 2].kind == Tok::kIdent &&
            (t[j + 2].text == "begin" || t[j + 2].text == "cbegin")) {
          offender = t[j].text;
          break;
        }
      }
    }
    if (offender.empty()) continue;

    // Loop body: `{...}` or a single statement.
    std::size_t b = close + 1;
    std::size_t e;
    if (b < t.size() && t[b].kind == Tok::kPunct && t[b].text == "{") {
      e = match_forward(t, b);
      if (e >= t.size()) e = t.size() - 1;
    } else {
      e = statement_around(t, b).end;
    }
    if (body_escapes(t, b, e)) {
      ctx.report(t[i].line, "ordered-iteration",
                 "iteration over unordered container '" + offender +
                     "' escapes into stateful code; hash-order is not a "
                     "function of the seed — iterate a sorted copy or use "
                     "an ordered container");
    }
  }
}

}  // namespace asman_lint

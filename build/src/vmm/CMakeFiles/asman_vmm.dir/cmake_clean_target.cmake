file(REMOVE_RECURSE
  "libasman_vmm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/asman_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/asman_bench_util.dir/bench_util.cpp.o.d"
  "libasman_bench_util.a"
  "libasman_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/asman_vmm.dir/hypervisor.cpp.o"
  "CMakeFiles/asman_vmm.dir/hypervisor.cpp.o.d"
  "libasman_vmm.a"
  "libasman_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env bash
# Static checks driver: asman-lint (discipline checker) + clang-tidy.
#
#   tools/lint.sh [--help] [--fix] [--sarif <path>] [build-dir]
#                 [-- extra clang-tidy args]
#
# Runs two passes over the first-party tree:
#
#   1. asman-lint — the flow-sensitive discipline checker
#      (tools/asman_lint): determinism, ordered-iteration, integer-credit,
#      audit-seam, credit-flow, state-machine, thread-safety,
#      rng-discipline and value-range (the interval-domain overflow proof
#      seeded from src/core/bounds_spec.h). Uses the binary built in
#      <build-dir>; skipped with a
#      note when it has not been built yet (configure alone does not build
#      it). --sarif <path> forwards to the binary and writes a SARIF 2.1.0
#      report (this is what CI uploads to code scanning), and requires the
#      binary to exist.
#
#   2. clang-tidy — over the whole compile database. --fix applies
#      clang-tidy's suggested fixits in place (serialized through
#      run-clang-tidy when available, so concurrent edits to shared
#      headers cannot race).
#
# The build directory must have been configured already (any preset will
# do: CMakeLists.txt always exports compile_commands.json). Exits 0 when
# clang-tidy is not installed so that `tools/lint.sh` can sit in local
# hooks without breaking machines that lack the tool; CI installs it and
# runs this same script, so absence there would fail the job that checks
# for it explicitly.
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
  sed -n '2,28p' "tools/lint.sh" | sed 's/^# \{0,1\}//'
}

FIX=0
SARIF_OUT=""
while [ $# -gt 0 ]; do
  case "${1:-}" in
    --help|-h)
      usage
      exit 0
      ;;
    --fix)
      FIX=1
      shift
      ;;
    --sarif)
      if [ -z "${2:-}" ]; then
        echo "lint.sh: --sarif needs a path argument" >&2
        exit 2
      fi
      SARIF_OUT="$2"
      shift 2
      ;;
    *)
      break
      ;;
  esac
done
BUILD_DIR="${1:-build}"
shift || true
[ "${1:-}" = "--" ] && shift

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing -- configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

STATUS=0

# Pass 1: asman-lint tree scan (portable engine; the clang AST engine runs
# in the dedicated lint-static CI lane where pinned LLVM is installed).
ASMAN_LINT="$BUILD_DIR/tools/asman_lint/asman_lint"
if [ -x "$ASMAN_LINT" ]; then
  LINT_ARGS=(--root . -p "$BUILD_DIR")
  [ -n "$SARIF_OUT" ] && LINT_ARGS+=(--sarif "$SARIF_OUT")
  echo "lint.sh: asman-lint tree scan (${ASMAN_LINT})" >&2
  "$ASMAN_LINT" "${LINT_ARGS[@]}" || STATUS=$?
elif [ -n "$SARIF_OUT" ]; then
  echo "lint.sh: --sarif needs the asman_lint binary; build it first:" >&2
  echo "  cmake --build $BUILD_DIR --target asman_lint" >&2
  exit 2
else
  echo "lint.sh: $ASMAN_LINT not built; skipping the discipline scan" >&2
fi

# Pass 2: clang-tidy.
TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found; skipping (set CLANG_TIDY to override)" >&2
  exit $STATUS
fi

# First-party translation units only (third-party/test-framework TUs that
# end up in the compile database are not ours to lint). --others picks up
# files not yet committed (e.g. a freshly added src/vmm TU) so pre-commit
# runs lint what is about to land, not just what already did. asman-lint's
# fixtures are excluded (they plant violations on purpose and are never
# compiled), as is engine_clang.cpp (only in the database when the clang
# AST engine was configured in).
mapfile -t FILES < <(git ls-files --cached --others --exclude-standard \
                                  'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp' \
                                  'examples/*.cpp' 'tools/asman_lint/*.cpp' \
                                  ':!tools/asman_lint/fixtures/*' \
                                  ':!tools/asman_lint/engine_clang.cpp' \
                                  | sort -u)

echo "lint.sh: $TIDY over ${#FILES[@]} files (database: $BUILD_DIR)" >&2
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  FIX_ARGS=()
  [ "$FIX" = 1 ] && FIX_ARGS=(-fix)
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
      "${FIX_ARGS[@]}" "$@" "${FILES[@]}" || STATUS=$?
else
  FIX_ARGS=()
  [ "$FIX" = 1 ] && FIX_ARGS=(--fix)
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "${FIX_ARGS[@]}" "$@" "$f" || STATUS=$?
  done
fi
exit $STATUS

// determinism: the simulation must be a pure function of its seed. Wall
// clocks, libc randomness, environment reads, and pointer-address ordering
// all smuggle host state into the run and break bit-identical replay; the
// only sanctioned randomness is the seeded simcore::rng engine.
#include <string>
#include <unordered_set>

#include "analyzer.h"

namespace asman_lint {

namespace {

// Identifiers whose mere appearance is a finding: libc/stdlib entropy and
// wall-clock sources. (`time`/`clock` are handled separately because those
// names are common as methods, e.g. sim::ClockDomain::clock().)
const std::unordered_set<std::string>& banned_idents() {
  static const std::unordered_set<std::string> b{
      "rand",          "srand",         "drand48",
      "lrand48",       "random_device", "mt19937",
      "mt19937_64",    "default_random_engine", "minstd_rand",
      "system_clock",  "steady_clock",  "high_resolution_clock",
      "getenv",        "gettimeofday",  "clock_gettime",
      "rand_r",        "timespec_get"};
  return b;
}

bool prev_is_member_access(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return false;
  return t[i - 1].kind == Tok::kPunct &&
         (t[i - 1].text == "." || t[i - 1].text == "->");
}

// For `time(` / `clock(`: flag only `std::`- or global-`::`-qualified
// calls. Unqualified names collide with project methods (the machine's
// sim::ClockDomain accessor is literally named clock()), and an
// unqualified libc call needs <ctime>/<time.h>, which the include rule
// flags on its own — so qualified-only keeps full coverage.
bool wall_clock_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !(t[i + 1].kind == Tok::kPunct &&
                             t[i + 1].text == "("))
    return false;
  if (i == 0 || t[i - 1].kind != Tok::kPunct || t[i - 1].text != "::")
    return false;
  if (i >= 2 && t[i - 2].kind == Tok::kIdent)
    return t[i - 2].text == "std";
  return true;  // global-scope ::time( / ::clock(
}

// Flow-sensitive escape hatch for getenv: `const char* x = getenv(...)`
// where every other use of `x` in the function is a comparison (==, !=),
// a subscript read, or a strcmp/strncmp argument — i.e. the environment
// value is confined to a host-config boolean and cannot flow into
// simulation state. This is how the auditor's arming switch (env_truthy)
// is proven harmless instead of carrying a standing allow pragma.
bool getenv_confined(const AnalysisContext& ctx, std::size_t i) {
  const std::vector<Token>& t = ctx.unit.toks;
  const StmtRange stmt = statement_around(t, i);
  // Find `char ... X = ` to the left of the getenv call.
  std::string var;
  bool saw_char = false;
  for (std::size_t j = stmt.begin; j < i; ++j) {
    if (t[j].kind == Tok::kIdent && t[j].text == "char") saw_char = true;
    if (t[j].kind == Tok::kPunct && t[j].text == "=" && j > stmt.begin &&
        t[j - 1].kind == Tok::kIdent) {
      var = t[j - 1].text;
      break;
    }
  }
  if (!saw_char || var.empty()) return false;
  const FunctionSpan* fn = ctx.functions.enclosing(i);
  if (fn == nullptr) return false;
  for (std::size_t j = fn->begin; j < fn->end && j < t.size(); ++j) {
    if (t[j].kind != Tok::kIdent || t[j].text != var) continue;
    if (j >= stmt.begin && j < stmt.end) continue;  // the declaration itself
    if (j > 0 && t[j - 1].kind == Tok::kPunct &&
        (t[j - 1].text == "." || t[j - 1].text == "->"))
      continue;  // member of another object that shares the name
    bool ok = false;
    if (j + 1 < t.size() && t[j + 1].kind == Tok::kPunct &&
        (t[j + 1].text == "==" || t[j + 1].text == "!=" ||
         t[j + 1].text == "["))
      ok = true;
    if (!ok && j > 0 && t[j - 1].kind == Tok::kPunct &&
        (t[j - 1].text == "==" || t[j - 1].text == "!="))
      ok = true;
    if (!ok) {
      const StmtRange use = statement_around(t, j);
      for (std::size_t m = use.begin; m < j; ++m)
        if (t[m].kind == Tok::kIdent &&
            (t[m].text == "strcmp" || t[m].text == "strncmp"))
          ok = true;
    }
    if (!ok) return false;  // the value escapes the comparison confinement
  }
  return true;
}

}  // namespace

void check_determinism(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;

  for (const Include& inc : ctx.unit.includes) {
    if (inc.target == "random" || inc.target == "ctime" ||
        inc.target == "time.h" || inc.target == "sys/time.h")
      ctx.report(inc.line, "determinism",
                 "#include <" + inc.target +
                     "> pulls in nondeterministic sources; use the seeded "
                     "simcore::rng engine");
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Tok::kIdent) {
      if (banned_idents().count(t[i].text) != 0 &&
          !prev_is_member_access(t, i)) {
        if (t[i].text == "getenv" && getenv_confined(ctx, i)) continue;
        ctx.report(t[i].line, "determinism",
                   "'" + t[i].text +
                       "' injects host state into the simulation; all "
                       "randomness/time must flow through the seeded "
                       "simcore::rng / sim clock");
        continue;
      }
      if ((t[i].text == "time" || t[i].text == "clock") &&
          wall_clock_call(t, i)) {
        ctx.report(t[i].line, "determinism",
                   "wall-clock call '" + t[i].text +
                       "()' is not a function of the seed; use the "
                       "simulation clock");
        continue;
      }
      if (t[i].text == "uintptr_t" || t[i].text == "intptr_t") {
        ctx.report(t[i].line, "determinism",
                   "pointer-to-integer cast ('" + t[i].text +
                       "') enables address ordering, which varies run to "
                       "run; order by stable keys (VcpuKey) instead");
        continue;
      }
      // std::less<T*> — ordering containers/algorithms by address.
      if (t[i].text == "less" && i + 1 < t.size() &&
          t[i + 1].kind == Tok::kPunct && t[i + 1].text == "<") {
        const std::size_t close = match_forward(t, i + 1);
        if (close < t.size()) {
          for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].kind == Tok::kPunct && t[j].text == "*") {
              ctx.report(t[i].line, "determinism",
                         "std::less over a pointer type orders by address, "
                         "which varies run to run");
              break;
            }
          }
        }
      }
      continue;
    }
    // `&a < &b` (or `>`): comparing addresses for ordering.
    if (t[i].kind == Tok::kPunct && (t[i].text == "<" || t[i].text == ">") &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "&" && i + 2 < t.size() &&
        t[i + 2].kind == Tok::kIdent) {
      // Walk the left operand back over ident/member chains to its head;
      // require the head to be an address-of '&'.
      std::size_t j = i;
      while (j > 0 && (t[j - 1].kind == Tok::kIdent ||
                       (t[j - 1].kind == Tok::kPunct &&
                        (t[j - 1].text == "." || t[j - 1].text == "->"))))
        --j;
      if (j > 0 && t[j - 1].kind == Tok::kPunct && t[j - 1].text == "&" &&
          j != i) {
        // Exclude `a && b`-adjacent false matches: the lexer emits '&&' as
        // one token, so a lone '&' here really is address-of or bitwise-and;
        // bitwise-and of an ident chain compared to an address-of is not a
        // pattern this codebase uses.
        ctx.report(t[i].line, "determinism",
                   "comparing object addresses orders by allocation "
                   "layout, which varies run to run; order by stable keys "
                   "(VcpuKey) instead");
      }
    }
  }
}

}  // namespace asman_lint

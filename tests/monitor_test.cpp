// Monitoring Module: over-threshold detection -> VCRD window lifecycle.
#include "core/monitor.h"

#include <gtest/gtest.h>

namespace asman::core {
namespace {

class RecordingPort final : public vmm::HypervisorPort {
 public:
  void do_vcrd_op(vmm::VmId vm, vmm::Vcrd v) override {
    ops.push_back({vm, v});
  }
  void vcpu_block(vmm::VmId, std::uint32_t) override {}
  void vcpu_kick(vmm::VmId, std::uint32_t) override {}
  std::vector<std::pair<vmm::VmId, vmm::Vcrd>> ops;
};

Cycles ms(std::uint64_t v) { return sim::kDefaultClock.from_ms(v); }

MonitorConfig fixed_cfg(std::uint64_t window_ms) {
  MonitorConfig c;
  c.fixed_window = ms(window_ms);
  return c;
}

TEST(Monitor, OverThresholdRaisesVcrdHigh) {
  sim::Simulator s;
  RecordingPort port;
  MonitoringModule m(s, port, 7, fixed_cfg(30));
  EXPECT_FALSE(m.high());
  m.on_over_threshold();
  EXPECT_TRUE(m.high());
  ASSERT_EQ(port.ops.size(), 1u);
  EXPECT_EQ(port.ops[0], (std::pair<vmm::VmId, vmm::Vcrd>{7, vmm::Vcrd::kHigh}));
  EXPECT_EQ(m.adjusting_events(), 1u);
}

TEST(Monitor, QuietWindowDropsToLow) {
  sim::Simulator s;
  RecordingPort port;
  MonitoringModule m(s, port, 0, fixed_cfg(30));
  m.on_over_threshold();
  s.run_until(ms(29));
  EXPECT_TRUE(m.high());
  s.run_until(ms(31));
  EXPECT_FALSE(m.high());
  ASSERT_EQ(port.ops.size(), 2u);
  EXPECT_EQ(port.ops[1].second, vmm::Vcrd::kLow);
  EXPECT_EQ(m.windows_completed_quiet(), 1u);
  EXPECT_EQ(m.windows_extended(), 0u);
}

TEST(Monitor, OverThresholdDuringWindowExtendsIt) {
  sim::Simulator s;
  RecordingPort port;
  MonitoringModule m(s, port, 0, fixed_cfg(30));
  m.on_over_threshold();  // window [0, 30ms)
  s.run_until(ms(10));
  m.on_over_threshold();  // inside the window
  s.run_until(ms(31));
  EXPECT_TRUE(m.high()) << "window must be extended, not dropped";
  EXPECT_EQ(m.windows_extended(), 1u);
  EXPECT_EQ(m.adjusting_events(), 2u);  // the extension re-estimates
  // Quiet from here: [30, 60) closes.
  s.run_until(ms(61));
  EXPECT_FALSE(m.high());
  // Exactly one HIGH and one LOW hypercall in total — the extension does
  // not re-send HIGH.
  ASSERT_EQ(port.ops.size(), 2u);
  EXPECT_EQ(port.ops[0].second, vmm::Vcrd::kHigh);
  EXPECT_EQ(port.ops[1].second, vmm::Vcrd::kLow);
}

TEST(Monitor, NewLocalityAfterLowStartsFreshWindow) {
  sim::Simulator s;
  RecordingPort port;
  MonitoringModule m(s, port, 0, fixed_cfg(20));
  m.on_over_threshold();
  s.run_until(ms(25));
  ASSERT_FALSE(m.high());
  m.on_over_threshold();
  EXPECT_TRUE(m.high());
  EXPECT_EQ(m.adjusting_events(), 2u);
  EXPECT_EQ(port.ops.size(), 3u);  // HIGH, LOW, HIGH
}

TEST(Monitor, ThresholdMatchesDeltaExponent) {
  sim::Simulator s;
  RecordingPort port;
  MonitorConfig c;
  c.delta_exp = 22;
  MonitoringModule m(s, port, 0, c);
  EXPECT_EQ(m.threshold(), sim::pow2_cycles(22));
}

TEST(Monitor, LearnedWindowsUseEstimator) {
  sim::Simulator s;
  RecordingPort port;
  MonitorConfig c;  // fixed_window = 0 -> learned
  MonitoringModule m(s, port, 0, c);
  m.on_over_threshold();
  EXPECT_TRUE(m.high());
  EXPECT_EQ(m.estimator().events(), 1u);
  // The window length is one of the estimator's candidates.
  const Cycles x = m.estimator().last_estimate();
  EXPECT_GE(x, c.learning.unit);
  EXPECT_LE(x, Cycles{c.learning.unit.v * c.learning.num_candidates});
}

TEST(Monitor, CountsOverThresholdEvents) {
  sim::Simulator s;
  RecordingPort port;
  MonitoringModule m(s, port, 0, fixed_cfg(50));
  for (int i = 0; i < 5; ++i) m.on_over_threshold();
  EXPECT_EQ(m.over_threshold_events(), 5u);
  EXPECT_EQ(m.adjusting_events(), 1u);  // the other four were inside HIGH
}

}  // namespace
}  // namespace asman::core

file(REMOVE_RECURSE
  "../bench/fig12_multivm6"
  "../bench/fig12_multivm6.pdb"
  "CMakeFiles/fig12_multivm6.dir/fig12_multivm6.cpp.o"
  "CMakeFiles/fig12_multivm6.dir/fig12_multivm6.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multivm6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

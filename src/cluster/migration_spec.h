// The legal live-migration phase transition relation — the single source
// of truth for the cluster's migration state machine.
//
// Exactly one definition of this relation exists in the repository, the
// same design as src/vmm/state_spec.h for VCPU lifecycle states. The
// runtime FSM (src/cluster/cluster.cpp, Cluster::set_phase) consults
// legal_migration_transition() for every phase write, and asman-lint's
// `state-machine` check lexes THIS file at analysis time to verify every
// statically determinable set_phase call site against the same table.
// Editing the table below therefore changes both the runtime and the
// static checker in one place; duplicating it anywhere else defeats the
// design.
//
// asman-lint parses the initializer of kLegalMigrationTransitions
// structurally (it has no preprocessor), so the table must stay a plain
// constexpr array of `{MigrationPhase::kFrom, MigrationPhase::kTo}` pairs
// — no macros, no computed entries.
#pragma once

#include <cstdint>

namespace asman::cluster {

/// Live-migration protocol phases (docs/MODEL.md §2.7). A migration record
/// rests in kIdle, walks kPreCopy -> kStopAndCopy -> kCommit on success,
/// and reaches kAbort from either active phase on link loss, host failure
/// or an exhausted retry budget. Both terminal phases return to kIdle when
/// their cleanup (ownership switch / rollback) completes.
enum class MigrationPhase : std::uint8_t {
  kIdle = 0,
  kPreCopy,
  kStopAndCopy,
  kCommit,
  kAbort,
};

struct MigrationTransition {
  MigrationPhase from;
  MigrationPhase to;
};

/// The protocol contract: pre-copy may only start from rest; stop-and-copy
/// may fall back to pre-copy (downtime budget exceeded — more rounds with
/// backoff) but a commit is atomic and irreversible (never back to copying,
/// never into abort); abort is reachable from both active copy phases and,
/// like commit, only ever returns to rest.
inline constexpr MigrationTransition kLegalMigrationTransitions[] = {
    {MigrationPhase::kIdle, MigrationPhase::kPreCopy},
    {MigrationPhase::kPreCopy, MigrationPhase::kStopAndCopy},
    {MigrationPhase::kPreCopy, MigrationPhase::kAbort},
    {MigrationPhase::kStopAndCopy, MigrationPhase::kCommit},
    {MigrationPhase::kStopAndCopy, MigrationPhase::kPreCopy},
    {MigrationPhase::kStopAndCopy, MigrationPhase::kAbort},
    {MigrationPhase::kCommit, MigrationPhase::kIdle},
    {MigrationPhase::kAbort, MigrationPhase::kIdle},
};

constexpr bool legal_migration_transition(MigrationPhase from,
                                          MigrationPhase to) {
  for (const MigrationTransition& t : kLegalMigrationTransitions)
    if (t.from == from && t.to == to) return true;
  return false;
}

const char* to_string(MigrationPhase p);

}  // namespace asman::cluster

# Empty dependencies file for fig12_multivm6.
# This may be replaced when dependencies are built.

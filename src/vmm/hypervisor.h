// Hypervisor scheduling machinery (the VMM).
//
// `Hypervisor` implements everything the paper's schedulers share: slot
// ticks (10 ms), credit accounting at K-slot intervals (Algorithm 3),
// per-PCPU run queues, dispatch (Algorithm 4's skeleton), idle-avoiding
// work stealing, block/kick handling, and the IPI path used for
// coscheduling. Concrete schedulers specialize two knobs:
//
//   * wants_cosched(vm)  — should this VM's VCPUs be gang-scheduled now?
//       stock Credit:      never                    (vmm::CreditScheduler)
//       static CON [12]:   vm.type == kConcurrent   (core::StaticCoScheduler)
//       ASMan:             vm.vcrd == HIGH          (core::AdaptiveScheduler)
//   * on_vcrd_changed(vm) — reaction to the do_vcrd_op hypercall
//       (ASMan relocates the VM's VCPUs onto distinct PCPUs, Algorithm 3
//       lines 8-16).
//
// The scheduler is event-driven and deterministic; it owns all Vm/Vcpu
// records and exposes read-only views for metrics and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bounds_spec.h"
#include "hw/ipi.h"
#include "hw/machine.h"
#include "hw/memsys/contention.h"
#include "simcore/rng.h"
#include "vmm/admission.h"
#include "simcore/simulator.h"
#include "simcore/trace.h"
#include "vmm/audit_sink.h"
#include "vmm/fault_hook.h"
#include "vmm/ports.h"
#include "vmm/runqueue.h"
#include "vmm/vcpu.h"

namespace asman::vmm {

/// Graceful-degradation knobs (docs/MODEL.md "Fault model & graceful
/// degradation"). Zero-valued Cycles fields are derived from the machine
/// configuration at start(). The flap rate-limiter is always armed (it
/// defends against misbehaving guests, which need no fault injection); the
/// IPI retry and gang watchdog paths arm themselves only when the substrate
/// can actually misbehave — a lossy IPI bus or an installed fault surface —
/// so fault-free runs stay bit-identical to the pre-resilience scheduler.
/// Consumption-accounting discipline (docs/MODEL.md "Threat model &
/// fairness guarantees"). The attack surface of Xen's credit scheduler is
/// the *sampling* of consumption, so the discipline is a resilience knob:
///
///   kStochastic  — the repo's default: a full slot is charged with
///       probability elapsed/slot. Unbiased in expectation and therefore
///       not profitably dodgeable, but quantized like Xen's sampling.
///       Fault-free runs stay bit-identical to earlier builds.
///   kTickSampled — faithful vulnerable Xen: whoever is running at the
///       periodic sampling instant pays a full slot; spans that end
///       between instants are never billed. A guest that yields just
///       before each tick dodges accounting entirely (arXiv 1103.0759).
///       With ResilienceConfig::sample_offset_jitter the instant moves to
///       a seeded-random offset inside each slot, which restores
///       unbiasedness against tick-grid dodgers.
///   kExact       — tickless hardened accounting: every online span is
///       billed exactly (integer, __int128-widened, sub-slot remainder
///       carried), so there is nothing left to dodge.
enum class AccountingMode : std::uint8_t { kStochastic, kTickSampled, kExact };

struct ResilienceConfig {
  /// Re-send a coscheduling IPI whose target sibling never came online,
  /// this many times per launch, before abandoning the gang start for the
  /// slot. Active only on a lossy bus (hw::IpiBus::lossy).
  std::uint32_t ipi_max_retries{2};
  /// Ack deadline per IPI attempt (0 = 8x the bus one-way latency).
  Cycles ipi_ack_timeout{0};
  /// Strict-gang watchdog period: a gang still partial (some members
  /// running, an eligible sibling absent) after this long is released via
  /// co-stop instead of stalling forever (0 = 2 slots).
  Cycles gang_watchdog{0};
  /// Consecutive watchdog fires that demote the VM to stock credit
  /// treatment (0 = never demote from the watchdog path).
  std::uint32_t watchdog_demote_after{3};
  /// VCRD staleness TTL: a VM holding VCRD HIGH longer than this without a
  /// fresh do_vcrd_op report is forced back to LOW at the next accounting
  /// pass (0 = disabled; the honest Monitoring Module only hypercalls on
  /// transitions, so the TTL is for runs whose guests may go silent).
  Cycles vcrd_ttl{0};
  /// Flap rate-limiter: more than this many LOW->HIGH transitions inside
  /// one window demotes the VM (Zhou-style scheduler attack).
  std::uint32_t flap_limit{8};
  /// Flap window length (0 = 5 slots).
  Cycles flap_window{0};
  /// How long a demoted VM stays degraded (0 = 12 slots). Degradation is
  /// lifted at the first accounting pass after the backoff expires.
  Cycles demote_backoff{0};

  // --- adversarial-tenancy hardening (docs/MODEL.md "Threat model") ---
  /// How consumption is billed against credit (see AccountingMode).
  AccountingMode accounting{AccountingMode::kStochastic};
  /// kTickSampled only: sample at a seeded-random offset inside each slot
  /// instead of at the (dodgeable) tick instant. All draws go through the
  /// hypervisor's seeded RNG, so runs stay bit-reproducible per seed.
  bool sample_offset_jitter{false};
  /// BOOST-abuse rate limiter: more than this many wake boosts granted to
  /// one VM inside one boost_window opens a boost_penalty-long window in
  /// which the VM's wakes get no BOOST priority (0 = limiter off; grants
  /// are still metered). Rides the flap-limiter's window machinery.
  std::uint32_t boost_limit{0};
  /// Boost-limiter window length (0 = 5 slots).
  Cycles boost_window{0};
  /// Boost-denial penalty window after an overflow (0 = 12 slots).
  Cycles boost_penalty{0};
  /// VCRD plausibility clamp: a HIGH claim is rejected (counted in
  /// Vm::implausible_vcrds, no TTL refresh, no state change) unless the VM
  /// produced at least this many yield hints — the hardware-observable
  /// spin evidence core::HwAdaptiveScheduler also consumes — inside the
  /// current vcrd_check_window (0 = clamp off).
  std::uint32_t vcrd_min_yields{0};
  /// Plausibility-clamp observation window (0 = 5 slots).
  Cycles vcrd_check_window{0};
};

/// Portable VM image a live migration carries between hosts: identity,
/// shape, and the residual credit captured from the source's VCPUs at
/// migrate_out — widened to __int128 so the sum over any VCPU count can
/// never wrap (the cluster auditor verifies the transfer is exact).
struct MigrationTicket {
  std::string name;
  std::uint32_t weight{256};
  std::uint32_t n_vcpus{0};
  VmType type{VmType::kGeneral};
  __int128 credit_pool{0};

  /// A ticket is restorable when its shape is inside the shared bounds
  /// spec: the destination's create_vm clamps weight and refuses an
  /// out-of-spec VCPU count anyway, but a corrupted ticket should be
  /// refused before any audit event fires on the target host.
  bool valid() const {
    return n_vcpus >=
               static_cast<std::uint32_t>(
                   core::bounds_of(core::field::n_vcpus)->lo) &&
           n_vcpus <= static_cast<std::uint32_t>(
                          core::bounds_of(core::field::n_vcpus)->hi) &&
           weight > 0;
  }
};

class Hypervisor : public HypervisorPort {
 public:
  Hypervisor(sim::Simulator& simulation, const hw::MachineConfig& machine,
             SchedMode mode, sim::Trace* trace = nullptr,
             std::uint64_t seed = 0x5EEDULL);
  ~Hypervisor() override = default;

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Create a VM with `n_vcpus` VCPUs and a proportional-share `weight`.
  /// VCPUs start runnable, spread round-robin across (online) PCPU run
  /// queues. Legal before start() *and* at any scheduling event afterwards:
  /// a hot-created VM starts with zero credit and is minted its share at
  /// the next accounting period, so existing VMs' credits are untouched.
  /// Returns kInvalidVmId when the admission controller rejects the
  /// request (counted in admission_rejects()).
  VmId create_vm(std::string name, std::uint32_t weight, std::uint32_t n_vcpus,
                 VmType type = VmType::kGeneral);

  /// Destroy a live VM at any scheduling event: boosts and watchdogs are
  /// cancelled, running VCPUs are unmapped (burn/charge as usual), queued
  /// ones are drained from their run queues, and every record becomes a
  /// kDestroyed tombstone (statistics stay readable under the same id —
  /// ids are never reused). A mid-gang destruction aborts the gang cleanly;
  /// the freed PCPUs re-dispatch immediately. Residual credit leaves with
  /// the VM. Returns false for an unknown or already-dead id.
  bool destroy_vm(VmId vm);

  /// Resize a live VM's VCPU count at any scheduling event. Growth admits
  /// the extra VCPUs through the admission controller (false + counted
  /// reject on saturation) and enqueues them runnable with zero credit;
  /// shrinkage drains the top indices (gang survivors are re-spread onto
  /// pairwise-distinct PCPUs when coscheduled). Returns false for an
  /// unknown/dead id, n_vcpus == 0, or an admission reject.
  bool resize_vm(VmId vm, std::uint32_t n_vcpus);

  // --- cluster transfer seams (src/cluster/) --------------------------------
  // Live migration moves a VM between Hypervisor instances that share one
  // Simulator. All state changes flow through the same audited choke
  // points as destroy/create, so per-host auditors stay coherent and the
  // cluster auditor can verify the credit transfer end to end.

  /// Pause a live VM (stop-and-copy downtime window): every VCPU is parked
  /// in kBlocked through the audited transition paths, boosts/watchdogs are
  /// cancelled, and kicks latch (replayed at resume) instead of enqueueing.
  /// Idempotent; false for an unknown or dead id.
  bool pause_vm(VmId vm);
  /// Undo pause_vm: VCPUs that held work at pause (or were kicked while
  /// paused) re-enter their run queues and idle PCPUs pick them up.
  bool resume_vm(VmId vm);
  /// Capture a live VM's identity, shape and residual credit into a
  /// MigrationTicket, then retire the local records exactly like
  /// destroy_vm (audited drains, kDestroyed tombstones, id never reused).
  /// Ownership moves with the ticket. Invalid ticket for unknown/dead ids.
  MigrationTicket migrate_out(VmId vm);
  /// Admit a migrated VM from a ticket: create_vm (through admission) then
  /// seed the carried credit pool, truncating-split per VCPU and clamped to
  /// +/-credit_cap like Algorithm 3's re-split. `seeded` (optional) reports
  /// the total actually credited, so the caller can account the exact
  /// split/clamp residual. Returns kInvalidVmId on admission reject
  /// (nothing is seeded; the ticket stays valid for another host).
  VmId migrate_in(const MigrationTicket& ticket, __int128* seeded = nullptr);
  /// Host crash: park every VCPU in kBlocked through the audited paths,
  /// stop the tick/accounting machinery for good, and bounce all later
  /// hypercalls. The frozen state stays audit-clean and readable; there is
  /// no un-halt. Idempotent.
  void halt();
  bool halted() const { return halted_; }
  /// True for a live VM currently paused by pause_vm.
  bool vm_paused(VmId id) const { return vm(id).paused; }

  // --- migration / halt counters (cluster RunResult surface) ---
  std::uint64_t vm_migrations_out() const { return vm_migrations_out_; }
  std::uint64_t vm_migrations_in() const { return vm_migrations_in_; }

  /// Attach the guest kernel that will receive online/offline callbacks.
  /// Call before start() for boot-time VMs, or right after a hot
  /// create_vm before the next scheduling event dispatches the new VCPUs.
  void attach_guest(VmId vm, GuestPort* guest);

  /// Arm the periodic slot tick; performs the initial credit assignment and
  /// dispatch at the current simulation time.
  void start();

  /// Gang semantics. kStrict (default) adds ESX-style co-start/co-stop on
  /// top of Algorithm 4's IPI boosts: the gang starts, stops and is
  /// preempted as a unit. kRelaxed keeps only the boosts (VMware's relaxed
  /// coscheduling): members may run skewed, dribbling in and out. Set
  /// before start().
  enum class Strictness : std::uint8_t { kStrict, kRelaxed };
  void set_cosched_strictness(Strictness s) { strictness_ = s; }
  Strictness cosched_strictness() const { return strictness_; }

  /// Replace the graceful-degradation knobs. Set before start().
  void set_resilience(const ResilienceConfig& r) { resilience_ = r; }
  const ResilienceConfig& resilience() const { return resilience_; }

  /// Replace the admission-control / overload-governor knobs. Set before
  /// start() (zero-valued restore_backoff is derived there).
  void set_admission(const AdmissionConfig& a) { admission_ = a; }
  const AdmissionConfig& admission() const { return admission_; }

  /// Enable/disable the topology-aware placement policy (default on). With
  /// it off the scheduler still *pays* the migration cost model on a
  /// multi-domain topology (so aware-vs-blind comparisons are at equal
  /// cost), but places VCPUs exactly like the flat scheduler. On a flat
  /// topology the flag is irrelevant: both policy and cost model are
  /// inert and scheduling is bit-identical to pre-topology builds. Set
  /// before the first create_vm (boot placement consults it).
  void set_topology_aware(bool aware) { topology_aware_ = aware; }
  bool topology_aware() const { return topology_aware_; }
  /// The resolved processor topology this scheduler runs on.
  const hw::Topology& topology() const { return topo_; }

  /// Enable/disable the pressure-aware placement policy (default on).
  /// With it off the contention engine still *degrades* effective cycles
  /// wherever footprints and finite capacities are declared — aware and
  /// blind runs face the same physics — but boot spread, the steal gate
  /// and the pressure balancer are disabled. With no declared footprints,
  /// llc_bytes == 0, or a flat topology the engine itself is inert and
  /// scheduling is bit-identical to pre-contention builds (the same two-
  /// gate discipline as the topology cost model). Set before create_vm.
  void set_pressure_aware(bool aware) { pressure_aware_ = aware; }
  bool pressure_aware() const { return pressure_aware_; }
  /// Declare `vm`'s memory footprint (from its workload model; callable
  /// any time, takes effect at the next accounting period). A nonzero
  /// footprint on a multi-domain machine whose MachineConfig left
  /// llc_bytes or socket_mem_bw_bytes_per_s zero is a counted, reported
  /// configuration error (hw::validate_footprint_config) rather than a
  /// silent mismodel; see footprint_config_errors().
  void set_vm_footprint(VmId id, const hw::memsys::MemFootprint& fp);
  const hw::memsys::MemFootprint& vm_footprint(VmId id) const;

  // --- fault-injection surface (src/faults/) --------------------------------
  // These entry points model substrate faults; production scheduling never
  // calls them. They keep every invariant the auditor checks: state changes
  // go through the audited transition paths and credit is preserved.

  /// Install (or remove) the hardware-fault hook (timer-tick jitter). Arms
  /// the degradation machinery.
  void set_fault_hook(FaultHook* hook);
  /// Declare that a fault plan is active even if no hook is installed
  /// (e.g. guest- or vmm-layer faults only): arms the gang watchdog.
  void arm_degradation() { faults_armed_ = true; }

  /// Take a PCPU offline: the current VCPU is preempted and, like the rest
  /// of the queue, evacuated onto online PCPUs with credit preserved.
  /// Blocked VCPUs homed here are re-homed when kicked. No-op if already
  /// offline or if this is the last online PCPU (the machine never loses
  /// its final processor, mirroring cpu-hotplug rules).
  void fault_pcpu_offline(PcpuId p);
  /// Bring a PCPU back online and let it pick up work.
  void fault_pcpu_online(PcpuId p);

  /// Crash a VCPU: it is forced into kBlocked (through the audited
  /// transition path) and every later kick is ignored — a permanent guest
  /// halt. Idempotent.
  void fault_crash_vcpu(VmId vm, std::uint32_t vidx);

  // --- HypervisorPort (guest-visible hypercalls) ---
  void do_vcrd_op(VmId vm, Vcrd vcrd) override;
  void vcpu_block(VmId vm, std::uint32_t vidx) override;
  void vcpu_kick(VmId vm, std::uint32_t vidx) override;
  /// Guest spin-yield notification. The base class only meters it (per-VM
  /// sliding yield window backing the VCRD plausibility clamp — scheduling
  /// is never affected); core::HwAdaptiveScheduler additionally feeds its
  /// spin-inference windows (and calls this first).
  void vcpu_yield_hint(VmId vm, std::uint32_t vidx) override;

  // --- introspection (tests, metrics, benches) ---
  const hw::MachineConfig& machine() const { return machine_; }
  SchedMode mode() const { return mode_; }
  std::size_t num_vms() const { return vms_.size(); }
  Vm& vm(VmId id) { return *vms_[id]; }
  const Vm& vm(VmId id) const { return *vms_[id]; }
  /// False for destroyed (tombstone) VMs and out-of-range ids.
  bool vm_alive(VmId id) const { return id < vms_.size() && vms_[id]->alive; }
  /// Live VMs right now (tombstones excluded).
  std::size_t num_live_vms() const;
  /// Current weighted VCPU load per online PCPU: sum over live VMs of
  /// num_vcpus x (weight / kReferenceWeight), divided by online PCPUs
  /// (the admission controller's saturation metric).
  double weighted_vcpu_load() const;
  /// Weight proportion omega(Vi) per Equation (1).
  double weight_proportion(VmId id) const;
  /// Expected VCPU online rate per Equation (2) (may exceed 1 for
  /// over-provisioned VMs; callers clamp).
  double nominal_online_rate(VmId id) const;

  /// Whether this VM's VCPUs are gang-scheduled at scheduling events right
  /// now (public view for auditing and tests): the scheduler's
  /// wants_cosched knob gated by graceful degradation — a demoted VM, or
  /// one whose gang no longer fits the online PCPUs, gets stock credit
  /// treatment until conditions recover.
  bool gang_scheduled(VmId id) const { return cosched_eligible(vm(id)); }
  /// Degradation state of one VM (tests, metrics).
  bool vm_degraded(VmId id) const { return vm(id).degraded; }
  /// Credit saturation bound: every VCPU credit stays in [-cap, +cap].
  Credit credit_cap() const { return credit_cap_; }

  /// Install (or, with nullptr, remove) the invariant-audit sink. The sink
  /// must outlive the hypervisor or be removed first. No-op hooks when the
  /// build has auditing compiled out (ASMAN_AUDIT=OFF).
  void set_audit_sink(AuditSink* sink) { audit_ = sink; }
  AuditSink* audit_sink() const { return audit_; }

  /// Mutable run-queue access. This is a fault-injection seam for the
  /// auditor's seeded-violation tests (duplicating a VCPU across queues,
  /// orphaning one, ...); production code must never use it.
  RunQueue& mutable_runqueue(PcpuId p) { return pcpus_[p].runq; }

  bool vcpu_is_online(VmId id, std::uint32_t vidx) const;
  /// Number of this VM's VCPUs mapped onto PCPUs right now.
  std::uint32_t vm_online_count(VmId id) const;

  bool pcpu_is_online(PcpuId p) const { return pcpus_[p].online; }
  std::uint32_t online_pcpus() const { return online_pcpus_; }

  Cycles pcpu_idle_total(PcpuId p) const;
  const RunQueue& runqueue(PcpuId p) const { return pcpus_[p].runq; }
  const Vcpu* running_on(PcpuId p) const { return pcpus_[p].current; }

  std::uint64_t total_migrations() const { return migrations_; }
  // --- topology cost-model counters (RunResult surface) ---
  std::uint64_t cross_llc_migrations() const { return cross_llc_migrations_; }
  std::uint64_t cross_socket_migrations() const {
    return cross_socket_migrations_;
  }
  Cycles migration_penalty_cycles() const { return migration_penalty_cycles_; }
  /// Steals skipped because the warm-cache penalty would exceed the gain.
  std::uint64_t topology_steal_rejects() const {
    return topology_steal_rejects_;
  }

  // --- memory-pressure counters & views (RunResult surface) ---
  /// True when the contention engine runs: multi-domain topology, finite
  /// LLC capacity, and at least one declared nonzero footprint.
  bool pressure_engine_active() const { return pressure_cost_active(); }
  /// The engine's published occupancy/bandwidth result for the most recent
  /// accounting period (empty while the engine is inert).
  const hw::memsys::ContentionPass& pressure_last() const { return pass_; }
  /// Machine-wide contention ledger: busy cycles accounted by the engine
  /// and their exact split (accounted == degraded + effective at every
  /// accounting instant — the pressure-conservation invariant).
  std::uint64_t pressure_accounted_total() const {
    return pressure_accounted_total_;
  }
  std::uint64_t pressure_degraded_total() const {
    return pressure_degraded_total_;
  }
  std::uint64_t pressure_effective_total() const {
    return pressure_effective_total_;
  }
  /// Accounting periods the engine has run (0 while inert).
  std::uint64_t pressure_periods() const { return pressure_periods_; }
  /// Steals refused because the raid would push the destination LLC past
  /// saturation.
  std::uint64_t pressure_steal_rejects() const {
    return pressure_steal_rejects_;
  }
  /// VM home-socket swaps performed by the periodic pressure balancer.
  std::uint64_t pressure_rebalances() const { return pressure_rebalances_; }
  /// Zero-capacity configuration errors reported by set_vm_footprint.
  std::uint64_t footprint_config_errors() const {
    return footprint_config_errors_;
  }
  /// Host-level pressure score for cluster placement: fraction of engine-
  /// accounted cycles lost to contention so far, in [0, 1). Exactly 0.0
  /// while the engine is inert, so pressure-blind hosts sort untouched.
  double pressure_score() const {
    return pressure_accounted_total_ > 0
               ? static_cast<double>(pressure_degraded_total_) /
                     static_cast<double>(pressure_accounted_total_)
               : 0.0;
  }
  /// Mutable pressure-partition access: a fault-injection seam for the
  /// auditor's seeded-violation tests (skewing the published occupancy
  /// partition); production code must never use it.
  hw::memsys::ContentionPass& mutable_pressure() { return pass_; }
  /// True when this gang spans more sockets than the minimal packing its
  /// running members allow (the topology-placement invariant; only
  /// meaningful right after relocate_vm, members drift legally between
  /// relocations). Always false when placement policy is inactive.
  bool placement_spans_excess_sockets(VmId id) const {
    return gang_spans_excess_sockets(vm(id));
  }
  std::uint64_t cosched_events() const { return cosched_events_; }
  std::uint64_t strong_launches() const { return strong_launches_; }
  std::uint64_t weak_launches() const { return weak_launches_; }
  std::uint64_t co_stops() const { return co_stops_; }
  std::uint64_t context_switches() const { return context_switches_; }
  const hw::IpiBus& ipi_bus() const { return ipi_; }
  hw::IpiBus& ipi_bus() { return ipi_; }
  std::uint64_t slots_elapsed() const { return pcpus_[0].ticks; }

  // --- lifecycle / admission counters (RunResult surface) ---
  std::uint64_t admission_rejects() const { return admission_rejects_; }
  /// Hot lifecycle operations (post-start; boot-time create_vm not counted).
  std::uint64_t vm_creates() const { return vm_creates_; }
  std::uint64_t vm_destroys() const { return vm_destroys_; }
  std::uint64_t vm_resizes() const { return vm_resizes_; }
  std::uint64_t overload_sheds() const { return overload_sheds_; }
  std::uint64_t overload_restores() const { return overload_restores_; }
  /// True while the overload governor is shedding coscheduling.
  bool overload_shed_active() const { return overload_shed_; }

  // --- degradation counters (RunResult surface) ---
  std::uint64_t ipi_retries() const { return ipi_retries_; }
  std::uint64_t gang_ipi_aborts() const { return gang_ipi_aborts_; }
  std::uint64_t gang_watchdog_fires() const { return gang_watchdog_fires_; }
  std::uint64_t evacuated_vcpus() const { return evacuated_vcpus_; }
  std::uint64_t pcpu_offline_events() const { return pcpu_offline_events_; }
  std::uint64_t hypercall_rejects() const { return hypercall_rejects_; }
  std::uint64_t ignored_kicks() const { return ignored_kicks_; }
  /// Total flap/watchdog demotions and TTL drops across all VMs.
  std::uint64_t vcrd_demotions() const;
  std::uint64_t stale_vcrd_drops() const;

  // --- adversarial-tenancy metrics (RunResult surface) ---
  /// Sums over all VMs (tombstones included — theft by a destroyed VM
  /// still happened).
  std::uint64_t boost_grants() const;
  std::uint64_t boost_denials() const;
  std::uint64_t dodged_samples() const;
  std::uint64_t implausible_vcrds() const;
  /// Total cycles consumed beyond what accounting attributed, across VMs.
  std::uint64_t theft_cycles_total() const;
  /// Cycles this PCPU spent non-idle (the conservation ledger's machine
  /// side: sum over VMs of total_online equals sum over PCPUs of this).
  Cycles pcpu_busy_total(PcpuId p) const { return pcpus_[p].busy_total; }
  /// Jain fairness index of weighted consumption, evaluated per accounting
  /// period over VMs active in that period (docs/MODEL.md "Threat model"):
  /// J = (sum x)^2 / (n * sum x^2), x_i = delta_online_i / weight_i. 1.0 =
  /// perfectly weighted-fair; 1/n = one VM took everything. Periods with
  /// fewer than two active VMs don't count.
  double fairness_min() const {
    return fairness_periods_ > 0 ? fairness_min_ : 1.0;
  }
  double fairness_mean() const {
    return fairness_periods_ > 0
               ? fairness_sum_ / static_cast<double>(fairness_periods_)
               : 1.0;
  }
  std::uint64_t fairness_periods() const { return fairness_periods_; }

 protected:
  /// Should this VM's VCPUs be gang-scheduled at scheduling events?
  virtual bool wants_cosched(const Vm& v) const {
    (void)v;
    return false;
  }
  /// wants_cosched gated by graceful degradation and the overload
  /// governor: a dead or demoted VM, one whose gang cannot fit the online
  /// PCPUs (hotplug), or any gang while the host sheds overload, falls
  /// back to stock credit treatment. Every dispatch-path decision uses
  /// this, never the raw knob.
  bool cosched_eligible(const Vm& v) const {
    return v.alive && wants_cosched(v) && !v.degraded && !overload_shed_ &&
           v.num_vcpus() <= online_pcpus_;
  }
  /// Hook invoked after the VCRD of `v` changed via do_vcrd_op.
  virtual void on_vcrd_changed(Vm& v, Vcrd previous) {
    (void)v;
    (void)previous;
  }
  /// Hook invoked for each VM right after credit assignment.
  virtual void on_accounting(Vm& v) { (void)v; }

  /// Algorithm 3 lines 8-16: place the VM's VCPUs into run queues of
  /// pairwise distinct PCPUs so a later gang dispatch can bring them all
  /// online simultaneously. Running VCPUs pin their PCPU; queued and
  /// blocked ones are moved as needed.
  void relocate_vm(Vm& v);

  sim::Simulator& sim_;

 private:
  struct PcpuRec {
    Vcpu* current{nullptr};
    RunQueue runq;
    bool online{true};  // offline PCPUs hold no work and dispatch nothing
    bool idle_marked{true};
    Cycles idle_since{0};
    Cycles idle_total{0};
    /// Non-idle cycles, maintained at the same burn instants as VCPU
    /// online time so cycle conservation holds exactly at every event.
    Cycles busy_total{0};
    /// When this PCPU last hit a sampling instant (kTickSampled dodge
    /// detection: a span that never crossed one was never billable).
    Cycles last_sample_at{0};
    std::uint64_t ticks{0};
  };

  /// Per-PCPU scheduling event, period = one slot (10 ms), with per-PCPU
  /// phase offsets — Xen ticks PCPUs independently, and this stagger is
  /// what desynchronizes the online windows of a capped VM's VCPUs (the
  /// root condition for lock-holder preemption).
  void pcpu_tick(PcpuId p);
  /// Global credit-assignment event (bootstrap PCPU), period = K slots.
  void accounting_event();
  void do_accounting();
  /// Account online time (credit is debited separately by charge()).
  void burn(Vcpu& v, Cycles elapsed);
  /// Debit an online span of `elapsed` cycles against credit, per the
  /// configured AccountingMode. kStochastic (default): a full slot's
  /// credit is charged with probability elapsed/slot — unbiased in
  /// expectation, but quantized like Xen's tick sampling; the noise
  /// desynchronizes the park/unpark times of a capped VM's VCPUs, which is
  /// the precondition for lock-holder preemption. kExact: precise integer
  /// debit with carried sub-slot remainder. kTickSampled: span charges
  /// nothing (billing happens only at sampling instants — see the charge(v)
  /// overload); the span is counted as dodged if it crossed no instant.
  /// Also maintains the attributed-cycles theft meter in every mode.
  void charge(Vcpu& v, Cycles elapsed);
  /// Sampling-instant debit (kTickSampled): the caught VCPU pays one full
  /// slot, attributed in full. Kept an overload of charge() so every
  /// credit write stays inside the audited accounting paths that
  /// asman-lint's audit-seam check whitelists.
  void charge(Vcpu& v);
  /// Record a sampling instant on `p` and bill whoever is running there.
  void sample_instant(PcpuId p);
  /// Theft-meter bookkeeping: `span` cycles were billed to `v` and its VM.
  void attribute(Vcpu& v, Cycles span);
  /// BOOST rate limiter (wake path): meter the grant and, when
  /// ResilienceConfig::boost_limit is armed and the VM overflowed its
  /// window, deny BOOST for the penalty window. Mirrors note_flap's
  /// sliding-window shape.
  bool grant_boost(Vm& m);
  /// Deschedule the current VCPU of `p` (burn, notify guest, requeue).
  void go_offline(PcpuId p);
  /// Like go_offline but leaves the VCPU unqueued (block path).
  Vcpu* unmap_current(PcpuId p);
  /// Map `v` (currently queued on some PCPU) onto `p`.
  void go_online(PcpuId p, Vcpu* v);
  /// Audited choke points (docs/MODEL.md "Static guarantees"): every
  /// VcpuState write and run-queue membership change in the VMM flows
  /// through these three — asman-lint's audit-seam check rejects any
  /// other site — so the auditor's shadow state machine and queue
  /// partition scan can never drift from reality.
  void set_state(Vcpu& v, VcpuState to);
  void enqueue(PcpuId p, Vcpu* v);
  bool dequeue(PcpuId p, Vcpu* v);
  /// Pick and map work for `p` per Algorithm 4; may steal or go idle.
  void dispatch(PcpuId p);
  /// Find the best migratable VCPU for an idle `p` from other run queues.
  Vcpu* steal_for(PcpuId p, bool allow_over);
  /// Algorithm 4 lines 5-7: IPI the PCPUs holding siblings of `head`.
  void launch_cosched(PcpuId from, Vcpu& head);
  void ipi_handler(PcpuId target, std::uint32_t vm_vector);
  /// (Re)arm a one-slot cosched boost on `v` (weak = launched from spare
  /// capacity; see PrioClass::kWeakCosched).
  void refresh_cosched_boost(Vcpu& v, bool weak);
  /// Co-stop (ESX-style): once no member of a coscheduled VM has credit
  /// left, deschedule the whole gang at once instead of letting members
  /// dribble out one by one (stragglers would only spin on absent peers).
  /// Also invoked when one member is preempted by a better VCPU
  /// (co-preempt): a half-present gang is worthless to the guest.
  void co_stop(Vm& v);
  /// go_offline + co-stop of the victim's gang if it is coscheduled.
  void preempt_current(PcpuId p);
  bool is_schedulable(const Vcpu& v) const;
  /// True if placing a VCPU of `vm_id` on `p` would co-locate gang members.
  bool would_collide(VmId vm_id, PcpuId p) const;
  void note_trace(sim::TraceCat cat, std::string msg);

  // --- topology placement & migration cost (topology-gated) ------------------
  /// Cost model active: any multi-domain topology pays migration penalties,
  /// aware or not (comparisons stay at equal cost).
  bool topo_cost_active() const { return !topo_flat_; }
  /// Placement policy active: multi-domain topology and aware placement.
  bool topo_place_active() const { return topology_aware_ && !topo_flat_; }
  /// Record a migration of `v` from PCPU `from` to `to`: classify the hop
  /// (same-LLC moves are free), bump the cross-LLC/cross-socket counters,
  /// and — when v's cache_home is still warm — charge the refill penalty
  /// as cycles and a deterministic credit debit. No-op on flat topologies.
  void note_migration(Vcpu& v, PcpuId from, PcpuId to);
  /// Warm-cache penalty `v` would pay for landing on `to` right now
  /// (Cycles{0} when cold, same-LLC, or the cost model is inactive).
  Cycles would_be_penalty(const Vcpu& v, PcpuId to) const;
  /// Topology-aware flavour of relocate_vm: running members pin their
  /// sockets; the remaining members pack into a greedily-minimal socket
  /// set (largest spare capacity first) on pairwise-distinct PCPUs.
  void relocate_vm_topo(Vm& v);
  /// The socket set relocate_vm_topo may use (shared with the audit
  /// invariant so scheduler and checker agree on "minimal").
  std::vector<bool> gang_socket_set(const Vm& v) const;
  /// True when the gang occupies more sockets than relocate_vm_topo's
  /// minimal packing would use (relocation trigger + audit invariant).
  bool gang_spans_excess_sockets(const Vm& v) const;

  // --- memory-system contention (docs/MODEL.md §2.8, pressure-gated) ---------
  /// Engine (cost side) active: multi-domain topology, finite LLC
  /// capacity, and at least one VM declared a nonzero footprint. Mirrors
  /// topo_cost_active(): blind runs pay the same physics as aware runs.
  bool pressure_cost_active() const {
    return !topo_flat_ && footprints_seen_ && machine_.llc_bytes > 0;
  }
  /// Policy side active: engine running and pressure-aware placement on.
  bool pressure_place_active() const {
    return pressure_aware_ && pressure_cost_active();
  }
  /// Once per accounting period: recompute the occupancy partition and
  /// bandwidth pressure from authoritative placement (compute_contention),
  /// then split every VCPU's busy cycles since its pressure_mark into
  /// effective + degraded. The only writer of the pressure ledger
  /// (audit-seam rule); fires audit_contention() when done.
  void apply_contention();
  /// Periodic pressure balancer: when measured per-socket pressure
  /// diverges past a hysteresis band (and the cooldown expired), move one
  /// footprint-heavy VM from the hottest to the coolest socket through the
  /// audited relocation seams.
  void maybe_rebalance_pressure();
  /// Re-home every movable VCPU of `v` onto PCPUs of `socket` (running
  /// members stay; queued/blocked members move through dequeue/enqueue +
  /// note_migration, exactly like relocate_vm_topo). Returns true when any
  /// member actually moved; fires audit_relocated.
  bool rebalance_vm_to_socket(Vm& v, std::uint32_t socket);
  /// Working-set bytes `v` would park on the LLC of `p` (the steal gate's
  /// saturation test; 0 for zero-footprint VMs or inactive policy).
  std::uint64_t vcpu_llc_share(const Vcpu& v) const;

  // --- graceful degradation --------------------------------------------------
  /// Least-loaded online PCPU (tie: lowest id), preferring homes free of
  /// gang siblings and (under topology-aware placement) close to `near`,
  /// for evacuation and wake re-homing. Returns num_pcpus when none
  /// qualify (never happens while one PCPU stays online).
  PcpuId pick_online_home(VmId vm_for_collision, PcpuId near) const;
  /// True when two members share a home or a home went offline — placement
  /// a gang must not launch with. Only meaningful for cosched VMs.
  bool gang_homes_collide(const Vm& v) const;
  /// Record a LOW->HIGH transition in the flap window; demote on overflow.
  void note_flap(Vm& v);
  void demote_vm(Vm& v, const char* why);
  /// Lift expired demotions and stale-HIGH VCRDs (accounting boundary).
  void degradation_tick(Vm& v);
  /// Verify the sibling an IPI targeted actually arrived; re-send up to the
  /// retry budget, then abandon the gang start for this slot.
  void ipi_ack_check(VmId vm_id, std::uint32_t vidx, std::uint32_t attempt,
                     bool strong);
  /// Arm (if not already armed) the per-VM partial-gang watchdog.
  void arm_gang_watchdog(Vm& v);
  void gang_watchdog_fire(VmId id);
  bool degradation_armed() const { return faults_armed_ || ipi_.lossy(); }

  // --- runtime lifecycle / admission (lifecycle.cpp) -------------------------
  /// Weighted load the host would carry with `extra` more weighted VCPUs;
  /// used by create_vm/resize_vm admission checks.
  double prospective_load(double extra) const;
  bool admission_enabled() const {
    return admission_.max_vcpus_per_pcpu > 0.0;
  }
  /// Pick a home for a fresh VCPU: round-robin over online PCPUs, offset
  /// like boot-time placement so sibling VCPUs spread out. `self` is the
  /// VM under construction (create_vm builds it before it joins vms_, so
  /// the pressure spread reads already-placed sibling homes from it).
  PcpuId place_new_vcpu(VmId id, std::uint32_t vidx, const Vm& self) const;
  /// Retire one VCPU record: cancel boosts, drain it from its queue (or
  /// unmap it, burning/charging as usual), emit the audited ->Destroyed
  /// transition. Appends the freed PCPU to `freed` when it was running.
  void drain_vcpu(Vcpu& w, std::vector<PcpuId>& freed);
  /// Seed a freshly migrated-in VM's credit from the carried pool:
  /// truncating equal split per VCPU, clamped to +/-credit_cap (the same
  /// shape as Algorithm 3's re-split, so credit-bounds and the next
  /// accounting pass hold). Returns the total actually credited. An
  /// audited credit writer: asman-lint's audit-seam whitelist names it.
  __int128 seed_credit(VmId id, __int128 pool);
  /// Park one VCPU in kBlocked through the audited paths (pause/halt
  /// machinery): cancels its boosts, unmaps or dequeues as needed.
  /// Appends the freed PCPU to `freed` when it was running.
  void park_vcpu(Vcpu& w, std::vector<PcpuId>& freed);
  /// Re-dispatch `freed` plus any idle online PCPU (post-lifecycle-op).
  void redispatch_freed(const std::vector<PcpuId>& freed);
  /// Overload governor: shed coscheduling when load crosses the shed
  /// threshold (called when load rises)...
  void maybe_shed_overload();
  /// ...and restore it after the backoff once load has fallen (called at
  /// accounting boundaries and when load falls).
  void maybe_restore_overload();

  // Audit notification helpers; compiled to nothing with ASMAN_AUDIT=OFF so
  // the hot paths carry no audit branches in benchmark builds.
#ifdef ASMAN_AUDIT_ENABLED
  void audit_event(AuditPoint pt) {
    if (audit_) audit_->on_sched_event(pt);
  }
  void audit_transition(VcpuKey k, VcpuState from, VcpuState to) {
    if (audit_) audit_->on_state_change(k, from, to);
  }
  void audit_minted(VmId id, Credit inc) {
    if (audit_) audit_->on_accounting(id, inc);
  }
  void audit_created(VmId id) {
    if (audit_) audit_->on_vm_created(id);
  }
  void audit_resized(VmId id) {
    if (audit_) audit_->on_vm_resized(id);
  }
  void audit_relocated(VmId id) {
    if (audit_) audit_->on_relocated(id);
  }
  void audit_seeded(VmId id, __int128 pool) {
    if (audit_) audit_->on_seeded(id, pool);
  }
  void audit_contention() {
    if (audit_) audit_->on_contention();
  }
#else
  void audit_event(AuditPoint) {}
  void audit_transition(VcpuKey, VcpuState, VcpuState) {}
  void audit_minted(VmId, Credit) {}
  void audit_seeded(VmId, __int128) {}
  void audit_created(VmId) {}
  void audit_resized(VmId) {}
  void audit_relocated(VmId) {}
  void audit_contention() {}
#endif

  hw::MachineConfig machine_;
  hw::Topology topo_;     // machine_.resolved_topology(), fixed at ctor
  bool topo_flat_{true};  // cached topo_.is_flat()
  bool topology_aware_{true};
  Cycles cross_llc_penalty_{0};
  Cycles cross_socket_penalty_{0};
  Cycles warm_window_{0};
  SchedMode mode_;
  sim::Trace* trace_;
  AuditSink* audit_{nullptr};
  FaultHook* fault_hook_{nullptr};
  sim::Rng rng_;
  hw::IpiBus ipi_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<PcpuRec> pcpus_;
  std::uint32_t online_pcpus_{0};

  Cycles slot_len_;
  Cycles timeslice_len_;
  PcpuId dispatch_start_{0};  // rotates the accounting-pass dispatch order
  /// Algorithm 4's coscheduling mutex: at most one VM launches IPIs per
  /// scheduling-event instant (simultaneous dispatches share one instant).
  Cycles cosched_mutex_at_{Cycles::max()};
  bool started_{false};
  /// Crashed-host latch (halt()): the self-re-arming tick/accounting
  /// events check it first and stop re-arming; hypercalls bounce.
  bool halted_{false};
  bool in_scheduler_{false};  // guards against re-entrant hypercalls
  bool in_co_stop_{false};    // prevents co-stop cascades
  Strictness strictness_{Strictness::kStrict};

  ResilienceConfig resilience_;
  bool faults_armed_{false};

  AdmissionConfig admission_;
  /// Overload governor state: while set, cosched_eligible is false for
  /// every VM (gangs run under stock credit rules).
  bool overload_shed_{false};
  Cycles overload_until_{0};  // earliest restore after the last shed

  Credit credit_cap_;
  std::uint64_t migrations_{0};
  std::uint64_t cross_llc_migrations_{0};
  std::uint64_t cross_socket_migrations_{0};
  Cycles migration_penalty_cycles_{0};
  std::uint64_t topology_steal_rejects_{0};

  // --- memory-system contention state (docs/MODEL.md §2.8) ---
  bool pressure_aware_{true};
  /// Latched by the first nonzero set_vm_footprint (never cleared: a
  /// tombstone's past occupancy already shaped history).
  bool footprints_seen_{false};
  /// Declared footprint per VmId (zero entries for undeclared VMs).
  std::vector<hw::memsys::MemFootprint> footprints_;
  /// The engine's published result for the last accounting period; also
  /// the cached demand view the steal gate and placement spread consult
  /// between periods.
  hw::memsys::ContentionPass pass_;
  std::uint64_t pressure_accounted_total_{0};
  std::uint64_t pressure_degraded_total_{0};
  std::uint64_t pressure_effective_total_{0};
  std::uint64_t pressure_periods_{0};
  std::uint64_t pressure_steal_rejects_{0};
  std::uint64_t pressure_rebalances_{0};
  std::uint64_t footprint_config_errors_{0};
  /// Balancer hysteresis: last period (pressure_periods_ value) a swap
  /// fired; the cooldown keeps home assignments from ping-ponging.
  std::uint64_t last_pressure_rebalance_period_{0};
  std::uint64_t strong_launches_{0};
  std::uint64_t weak_launches_{0};
  std::uint64_t co_stops_{0};
  std::uint64_t cosched_events_{0};
  std::uint64_t context_switches_{0};
  std::uint64_t ipi_retries_{0};
  std::uint64_t gang_ipi_aborts_{0};
  std::uint64_t gang_watchdog_fires_{0};
  std::uint64_t evacuated_vcpus_{0};
  std::uint64_t pcpu_offline_events_{0};
  std::uint64_t hypercall_rejects_{0};
  std::uint64_t ignored_kicks_{0};
  std::uint64_t admission_rejects_{0};
  std::uint64_t vm_creates_{0};
  std::uint64_t vm_destroys_{0};
  std::uint64_t vm_resizes_{0};
  std::uint64_t vm_migrations_out_{0};
  std::uint64_t vm_migrations_in_{0};
  std::uint64_t overload_sheds_{0};
  std::uint64_t overload_restores_{0};
  /// Per-accounting-period Jain fairness aggregates (see fairness_min()).
  double fairness_min_{1.0};
  double fairness_sum_{0.0};
  std::uint64_t fairness_periods_{0};
};

/// The stock Xen Credit scheduler: proportional share, load balancing, no
/// coscheduling. This is the paper's baseline ("Credit").
class CreditScheduler final : public Hypervisor {
 public:
  using Hypervisor::Hypervisor;
};

}  // namespace asman::vmm

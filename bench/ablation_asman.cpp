// Ablation study of ASMan's design choices (not a paper figure; supports
// the design discussion in DESIGN.md).
//
//  1. Over-threshold exponent delta: the paper picks delta = 20. Smaller
//     deltas trigger coscheduling on benign contention (overhead); larger
//     ones miss lock-holder preemption events (under-coverage).
//  2. Learned window vs fixed window: Algorithm 1's Roth-Erev estimator
//     against hand-picked constants.
//  3. IPI latency sensitivity: the coscheduling mechanism's cost knob.
//
// All points run LU at the worst operating point (22.2 % online rate).
#include "bench_util.h"

using namespace asman;
using namespace asman::bench;

namespace {

ex::Scenario lu_asman() {
  return ex::single_vm_scenario(core::SchedulerKind::kAsman, 32,
                                ex::npb_factory(workloads::NpbBenchmark::kLU));
}

Sweep build_sweep() {
  Sweep s;
  s.add("baseline/credit",
        ex::single_vm_scenario(core::SchedulerKind::kCredit, 32,
                               ex::npb_factory(workloads::NpbBenchmark::kLU)));
  for (unsigned delta : {16u, 18u, 20u, 22u, 24u}) {
    ex::Scenario sc = lu_asman();
    sc.monitor.delta_exp = delta;
    s.add("delta/" + std::to_string(delta), std::move(sc));
  }
  for (unsigned ms : {10u, 30u, 100u, 300u}) {
    ex::Scenario sc = lu_asman();
    sc.monitor.fixed_window = sim::kDefaultClock.from_ms(ms);
    s.add("fixed_window/" + std::to_string(ms) + "ms", std::move(sc));
  }
  s.add("window/learned", lu_asman());
  for (unsigned us : {2u, 50u, 500u}) {
    ex::Scenario sc = lu_asman();
    sc.machine.ipi_latency_us = us;
    s.add("ipi_latency/" + std::to_string(us) + "us", std::move(sc));
  }
  // Out-of-VM VCRD inference (no guest modification; the paper's §7
  // future work) against the in-guest Monitoring Module.
  {
    ex::Scenario sc = lu_asman();
    sc.scheduler = core::SchedulerKind::kAsmanHw;
    s.add("monitor/out-of-vm", std::move(sc));
  }
  // Relaxed (VMware-style, boost-only) vs strict (co-start/co-stop) gangs.
  {
    ex::Scenario sc = lu_asman();
    sc.strictness = vmm::Hypervisor::Strictness::kRelaxed;
    s.add("gang/relaxed", std::move(sc));
  }
  // Detection-signal ablation: without the remote-runqueue probing of the
  // guest's tick/yield paths, lock-holder preemption goes largely unseen.
  {
    ex::Scenario sc = lu_asman();
    ex::VmSpec& v1 = sc.vms[1];
    v1.guest.balance_every_ticks = 0;
    v1.guest.yield_balance_every = 0;
    s.add("signal/no-remote-probing", std::move(sc));
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["runtime_s"] = v1.runtime_seconds;
  st.counters["adjusting"] = static_cast<double>(v1.adjusting_events);
  st.counters["high_frac"] = v1.vcrd_high_fraction;
}

void row(ex::TextTable& t, const Sweep& s, const std::string& l,
         const std::string& name) {
  const ex::VmResult& v1 = s.get(l).run.vm("V1");
  t.add_row({name, ex::fmt_f(v1.runtime_seconds),
             std::to_string(v1.adjusting_events),
             ex::fmt_pct(v1.vcrd_high_fraction)});
}

void print_tables(const Sweep& s) {
  std::printf("\n== Ablation: LU @ 22.2%% online rate (ASMan) ==\n");
  ex::TextTable t({"variant", "run time (s)", "adjusting events",
                   "VCRD-HIGH time"});
  row(t, s, "baseline/credit", "Credit (no cosched)");
  for (unsigned delta : {16u, 18u, 20u, 22u, 24u})
    row(t, s, "delta/" + std::to_string(delta),
        "delta = 2^" + std::to_string(delta));
  row(t, s, "window/learned", "window: learned (Alg 1-2)");
  for (unsigned ms : {10u, 30u, 100u, 300u})
    row(t, s, "fixed_window/" + std::to_string(ms) + "ms",
        "window: fixed " + std::to_string(ms) + "ms");
  for (unsigned us : {2u, 50u, 500u})
    row(t, s, "ipi_latency/" + std::to_string(us) + "us",
        "IPI latency " + std::to_string(us) + "us");
  row(t, s, "monitor/out-of-vm", "out-of-VM monitor (yield rate)");
  row(t, s, "gang/relaxed", "relaxed gangs (boost only)");
  row(t, s, "signal/no-remote-probing", "no remote rq probing in guest");
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "ablation", annotate,
                        print_tables);
}

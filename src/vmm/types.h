// Shared VMM vocabulary types.
#pragma once

#include <cstdint>
#include <string>

#include "hw/machine.h"
#include "simcore/time.h"

namespace asman::vmm {

using sim::Cycles;
using hw::PcpuId;

/// Dense VM identifier (0 = administrator VM / Domain-0 by convention in
/// the paper's scenarios, but the VMM itself assigns ids in creation order).
/// Ids are never reused: a destroyed VM keeps its id as a tombstone so
/// statistics collected under that id stay addressable (docs/MODEL.md
/// "VM lifecycle & admission").
using VmId = std::uint32_t;

/// Returned by Hypervisor::create_vm when the admission controller
/// rejects the request; never a valid VM id.
inline constexpr VmId kInvalidVmId = 0xFFFFFFFFu;

/// Identifies one virtual CPU inside one VM.
struct VcpuKey {
  VmId vm{0};
  std::uint32_t idx{0};
  friend constexpr bool operator==(VcpuKey, VcpuKey) = default;
};

/// VCPU Related Degree (paper §3.1): HIGH means the VM's VCPUs are in a
/// locality of synchronization and must be coscheduled; LOW means they may
/// be scheduled asynchronously.
enum class Vcrd : std::uint8_t { kLow, kHigh };

inline const char* to_string(Vcrd v) { return v == Vcrd::kHigh ? "HIGH" : "LOW"; }

/// Administrator-declared VM type, used only by the *static* coscheduling
/// baseline (CON, the authors' earlier VEE'09 system): a VM manually typed
/// kConcurrent is always gang-scheduled. ASMan ignores this field.
enum class VmType : std::uint8_t { kGeneral, kConcurrent };

/// Credit scheduler capping mode (Cherkasova et al., and paper §5.2/5.3):
/// non-work-conserving = a VM's CPU time is strictly capped by its weight
/// share; work-conserving = the share is only a guarantee and idle capacity
/// is redistributed.
enum class SchedMode : std::uint8_t { kNonWorkConserving, kWorkConserving };

/// Where a VCPU currently is, from the scheduler's point of view.
enum class VcpuState : std::uint8_t {
  kRunning,    // mapped onto a PCPU right now (online)
  kRunnable,   // waiting in some PCPU's run queue
  kBlocked,    // halted by the guest (idle — no runnable guest work)
  kDestroyed,  // drained by destroy_vm/resize_vm; terminal, never scheduled
};

/// Run-queue priority classes, highest first. kCosched is the temporarily
/// raised priority Algorithm 4 installs via IPI from an *entitled* gang
/// head; kWake models Xen's BOOST for freshly woken VCPUs; kUnder/kOver
/// are the stock Credit classes (credit >= 0 / credit < 0); kWeakCosched
/// is a gang boost launched out of spare (OVER) capacity — it aligns the
/// gang ahead of other OVER VCPUs but yields to anything entitled.
enum class PrioClass : std::uint8_t {
  kCosched = 0,
  kWake = 1,
  kUnder = 2,
  kWeakCosched = 3,
  kOver = 4,
};

}  // namespace asman::vmm

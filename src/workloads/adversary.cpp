#include "workloads/adversary.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "simcore/rng.h"
#include "workloads/synthetic.h"

namespace asman::workloads {

namespace {

Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

/// Smallest compute worth issuing before a dodge window: below this the
/// dodger goes straight to sleep (a sub-syscall compute would only add
/// kernel entries without stealing anything).
constexpr std::uint64_t kMinChunk = 5'000;

/// Tick-dodging cycle stealer (arXiv 1103.0759 §4): compute up to `guard`
/// cycles before every sampling-grid instant, then sleep until `land`
/// cycles after it. Under tick-sampled accounting the VCPU is never the
/// one caught running at a sampling instant, so it consumes without ever
/// being charged — and every wake re-enters through the BOOST path for
/// free preemption priority on top.
class TickDodgeWorkload final : public AdversaryModel {
 public:
  using AdversaryModel::AdversaryModel;

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t t = 0; t < threads_; ++t) {
      auto rng = std::make_shared<sim::Rng>(seeds.next());
      g.spawn(std::make_unique<LambdaProgram>([this, rng] {
                const std::uint64_t grid =
                    tune_.slot.v / std::max<std::uint32_t>(tune_.num_pcpus, 1);
                const std::uint64_t now = sim_.now().v;
                const std::uint64_t next = (now / grid + 1) * grid;
                const std::uint64_t stop =
                    next > tune_.guard.v ? next - tune_.guard.v : 0;
                if (stop > now + kMinChunk)
                  return guest::Op::compute(Cycles{stop - now});
                // Too close to the instant: vanish until just past it. The
                // small seeded jitter decorrelates sibling wake bursts.
                const std::uint64_t wake =
                    next + tune_.land.v + rng->next_below(tune_.land.v / 4 + 1);
                return guest::Op::sleep(Cycles{wake - now});
              }),
              t % g.num_vcpus());
    }
  }
};

/// BOOST farmer (arXiv 1103.0759 §5): sleep/wake oscillation faster than
/// the credit drain, so every wake re-earns Xen-style BOOST and jumps the
/// run queue. Thread phases are staggered so the VM always has a
/// freshly-boosted VCPU in flight.
class BoostFarmWorkload final : public AdversaryModel {
 public:
  using AdversaryModel::AdversaryModel;

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    const std::uint64_t period = tune_.burst.v + tune_.nap.v;
    for (std::uint32_t t = 0; t < threads_; ++t) {
      struct State {
        bool started{false};
        bool nap_next{false};
        sim::Rng rng;
      };
      auto st = std::make_shared<State>(State{false, false,
                                              sim::Rng(seeds.next())});
      const Cycles stagger{period * t / std::max<std::uint32_t>(threads_, 1) +
                           1};
      auto self = this;
      g.spawn(std::make_unique<LambdaProgram>([st, self, stagger] {
                if (!st->started) {
                  st->started = true;
                  return guest::Op::sleep(stagger);
                }
                if (st->nap_next) {
                  st->nap_next = false;
                  return guest::Op::sleep(Cycles{static_cast<std::uint64_t>(
                      st->rng.positive_jitter(
                          static_cast<double>(self->tune_.nap.v), 0.1))});
                }
                st->nap_next = true;
                return guest::Op::compute(Cycles{static_cast<std::uint64_t>(
                    st->rng.positive_jitter(
                        static_cast<double>(self->tune_.burst.v), 0.1))});
              }),
              t % g.num_vcpus());
    }
  }
};

/// VCRD liar: a plain CPU hog that reports VCRD HIGH straight through the
/// hypercall port — no Monitoring Module, no spinning, just a false claim
/// repeated every lie_period so any staleness TTL stays refreshed. Under
/// an unhardened ASMan the lie buys gang launches, IPI preemption of
/// neighbors and relocation service for a VM that never synchronizes.
class VcrdLiarWorkload final : public AdversaryModel {
 public:
  using AdversaryModel::AdversaryModel;

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t t = 0; t < threads_; ++t) {
      auto rng = std::make_shared<sim::Rng>(seeds.next());
      g.spawn(std::make_unique<LambdaProgram>([rng] {
                return guest::Op::compute(Cycles{static_cast<std::uint64_t>(
                    rng->positive_jitter(static_cast<double>(us(200).v),
                                         0.05))});
              }),
              t % g.num_vcpus());
    }
  }

  void connect(sim::Simulator& simulation, vmm::HypervisorPort& port,
               vmm::VmId vm) override {
    port_ = &port;
    vm_ = vm;
    schedule_lie(simulation);
  }

 private:
  void schedule_lie(sim::Simulator& s) {
    s.after(tune_.lie_period, [this, &s] {
      port_->do_vcrd_op(vm_, vmm::Vcrd::kHigh);
      schedule_lie(s);
    });
  }

  vmm::HypervisorPort* port_{nullptr};
  vmm::VmId vm_{0};
};

/// Starvation flooder: an oversubscribed swarm of threads each doing a
/// sliver of work and blocking again, so the VM emits a continuous stream
/// of wakes — each one a BOOST-priority queue jump that preempts whoever
/// honest tenant was running.
class StarveFloodWorkload final : public AdversaryModel {
 public:
  using AdversaryModel::AdversaryModel;

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t t = 0; t < threads_; ++t) {
      struct State {
        bool started{false};
        bool nap_next{false};
        sim::Rng rng;
      };
      auto st = std::make_shared<State>(State{false, false,
                                              sim::Rng(seeds.next())});
      const Cycles stagger{
          tune_.flood_nap.v * t / std::max<std::uint32_t>(threads_, 1) + 1};
      auto self = this;
      g.spawn(std::make_unique<LambdaProgram>([st, self, stagger] {
                if (!st->started) {
                  st->started = true;
                  return guest::Op::sleep(stagger);
                }
                if (st->nap_next) {
                  st->nap_next = false;
                  return guest::Op::sleep(Cycles{static_cast<std::uint64_t>(
                      st->rng.positive_jitter(
                          static_cast<double>(self->tune_.flood_nap.v),
                          0.2))});
                }
                st->nap_next = true;
                return guest::Op::compute(Cycles{static_cast<std::uint64_t>(
                    st->rng.positive_jitter(
                        static_cast<double>(self->tune_.flood_work.v),
                        0.2))});
              }),
              t % g.num_vcpus());
    }
  }
};

}  // namespace

const char* to_string(AttackKind k) {
  switch (k) {
    case AttackKind::kTickDodge:
      return "tick-dodge";
    case AttackKind::kBoostFarm:
      return "boost-farm";
    case AttackKind::kVcrdLie:
      return "vcrd-lie";
    case AttackKind::kStarveFlood:
      return "starve-flood";
  }
  return "?";
}

AttackKind attack_from_name(std::string_view name) {
  for (AttackKind k : kAllAttacks)
    if (name == to_string(k)) return k;
  return AttackKind::kTickDodge;
}

AdversaryTuning AdversaryTuning::resolved() const {
  AdversaryTuning t = *this;
  if (t.slot.v == 0) t.slot = sim::kDefaultClock.from_ms(10);
  if (t.num_pcpus == 0) t.num_pcpus = 4;
  if (t.guard.v == 0) t.guard = us(200);
  if (t.land.v == 0) t.land = us(50);
  if (t.burst.v == 0) t.burst = us(150);
  if (t.nap.v == 0) t.nap = us(120);
  if (t.lie_period.v == 0) t.lie_period = Cycles{t.slot.v * 2};
  if (t.flood_work.v == 0) t.flood_work = us(20);
  if (t.flood_nap.v == 0) t.flood_nap = us(30);
  return t;
}

std::unique_ptr<AdversaryModel> make_adversary(AttackKind kind,
                                               sim::Simulator& simulation,
                                               std::uint32_t vcpus,
                                               std::uint64_t seed,
                                               const AdversaryTuning& tune) {
  switch (kind) {
    case AttackKind::kTickDodge:
      return std::make_unique<TickDodgeWorkload>(simulation, kind, vcpus,
                                                 seed, tune);
    case AttackKind::kBoostFarm:
      return std::make_unique<BoostFarmWorkload>(simulation, kind, vcpus,
                                                 seed, tune);
    case AttackKind::kVcrdLie:
      return std::make_unique<VcrdLiarWorkload>(simulation, kind, vcpus,
                                                seed, tune);
    case AttackKind::kStarveFlood:
      return std::make_unique<StarveFloodWorkload>(simulation, kind,
                                                   3 * vcpus, seed, tune);
  }
  return nullptr;
}

}  // namespace asman::workloads

// Small synthetic programs/workloads used by tests, examples and benches.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/rng.h"
#include "workloads/workload.h"

namespace asman::workloads {

/// Plays back a fixed op list, then Done.
class ScriptProgram final : public guest::ThreadProgram {
 public:
  explicit ScriptProgram(std::vector<guest::Op> ops) : ops_(std::move(ops)) {}
  const char* name() const override { return "script"; }
  guest::Op next() override {
    if (i_ >= ops_.size()) return guest::Op::done();
    return ops_[i_++];
  }

 private:
  std::vector<guest::Op> ops_;
  std::size_t i_{0};
};

/// Wraps a generator callable.
class LambdaProgram final : public guest::ThreadProgram {
 public:
  explicit LambdaProgram(std::function<guest::Op()> fn) : fn_(std::move(fn)) {}
  const char* name() const override { return "lambda"; }
  guest::Op next() override { return fn_(); }

 private:
  std::function<guest::Op()> fn_;
};

/// Pure CPU hog: `threads` threads compute forever in chunks. Useful as a
/// background tenant in consolidation scenarios.
class CpuHogWorkload final : public Workload {
 public:
  CpuHogWorkload(std::uint32_t threads, Cycles chunk, std::uint64_t seed)
      : threads_(threads), chunk_(chunk), seed_(seed) {}

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t t = 0; t < threads_; ++t) {
      auto rng = std::make_shared<sim::Rng>(seeds.next());
      g.spawn(std::make_unique<LambdaProgram>([this, rng] {
                const double len = rng->positive_jitter(
                    static_cast<double>(chunk_.v), 0.05);
                return guest::Op::compute(
                    Cycles{static_cast<std::uint64_t>(len)});
              }),
              t % g.num_vcpus());
    }
  }
  std::string name() const override { return "cpu-hog"; }
  bool finite() const override { return false; }
  /// Optional memory footprint (zero by default: the hog is cache-resident
  /// and exerts no memory-system pressure). Tests and benches that want a
  /// cache-hungry tenant install one explicitly.
  void set_footprint(hw::memsys::MemFootprint fp) { footprint_ = fp; }
  hw::memsys::MemFootprint footprint() const override { return footprint_; }

 private:
  std::uint32_t threads_;
  Cycles chunk_;
  std::uint64_t seed_;
  hw::memsys::MemFootprint footprint_{};
};

/// `threads` threads hammer one shared futex-backed mutex: a synchronization
/// stress used by lock/monitor tests and the ablation benches.
class LockHammerWorkload final : public Workload {
 public:
  LockHammerWorkload(std::uint32_t threads, std::uint64_t iterations,
                     Cycles compute, Cycles hold, std::uint64_t seed)
      : threads_(threads),
        iterations_(iterations),
        compute_(compute),
        hold_(hold),
        seed_(seed) {}

  void deploy(guest::GuestKernel& g) override {
    const std::uint32_t mtx = g.create_mutex();
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t t = 0; t < threads_; ++t) {
      struct State {
        std::uint64_t left;
        bool lock_next{false};
        sim::Rng rng;
      };
      auto st = std::make_shared<State>(
          State{iterations_, false, sim::Rng(seeds.next())});
      auto self = this;
      g.spawn(std::make_unique<LambdaProgram>([st, self, mtx]() {
                if (st->left == 0) return guest::Op::done();
                if (st->lock_next) {
                  st->lock_next = false;
                  --st->left;
                  return guest::Op::critical(mtx, self->hold_);
                }
                st->lock_next = true;
                const double len = st->rng.positive_jitter(
                    static_cast<double>(self->compute_.v), 0.2);
                return guest::Op::compute(
                    Cycles{static_cast<std::uint64_t>(len)});
              }),
              t % g.num_vcpus());
    }
  }
  std::string name() const override { return "lock-hammer"; }
  /// Optional memory footprint (zero by default; see CpuHogWorkload).
  void set_footprint(hw::memsys::MemFootprint fp) { footprint_ = fp; }
  hw::memsys::MemFootprint footprint() const override { return footprint_; }

 private:
  std::uint32_t threads_;
  std::uint64_t iterations_;
  Cycles compute_;
  Cycles hold_;
  std::uint64_t seed_;
  hw::memsys::MemFootprint footprint_{};
};

/// Producer/consumer pairs communicating through counting semaphores
/// (blocking synchronization). Used to reproduce the paper's §2.2
/// observation that semaphore waits stay below 2^16 cycles even at very
/// low VCPU online rates: blocked threads release their VCPU, so the VMM
/// keeps proportional share and only the short kernel paths are measured.
class SemaphorePingPongWorkload final : public Workload {
 public:
  SemaphorePingPongWorkload(std::uint32_t pairs, std::uint64_t exchanges,
                            Cycles think, std::uint64_t seed)
      : pairs_(pairs), exchanges_(exchanges), think_(think), seed_(seed) {}

  void deploy(guest::GuestKernel& g) override {
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t p = 0; p < pairs_; ++p) {
      // A token circulates: ping starts with one credit so side A can run.
      const std::uint32_t ping = g.create_semaphore(1);
      const std::uint32_t pong = g.create_semaphore(0);
      spawn_side(g, ping, pong, 2 * p, seeds.next());
      spawn_side(g, pong, ping, 2 * p + 1, seeds.next());
    }
  }
  std::string name() const override { return "sem-pingpong"; }

 private:
  void spawn_side(guest::GuestKernel& g, std::uint32_t wait_sem,
                  std::uint32_t post_sem, std::uint32_t idx,
                  std::uint64_t seed) {
    struct State {
      std::uint64_t left;
      int phase;  // 0 = wait, 1 = compute, 2 = post
      sim::Rng rng;
    };
    auto st = std::make_shared<State>(State{exchanges_, 0, sim::Rng(seed)});
    const Cycles think = think_;
    g.spawn(std::make_unique<LambdaProgram>(
                [st, wait_sem, post_sem, think]() -> guest::Op {
                  switch (st->phase) {
                    case 0:
                      if (st->left == 0) return guest::Op::done();
                      --st->left;
                      st->phase = 1;
                      return guest::Op::sem_wait(wait_sem);
                    case 1: {
                      st->phase = 2;
                      const double len = st->rng.positive_jitter(
                          static_cast<double>(think.v), 0.2);
                      return guest::Op::compute(
                          Cycles{static_cast<std::uint64_t>(len)});
                    }
                    default:
                      st->phase = 0;
                      return guest::Op::sem_post(post_sem);
                  }
                }),
            idx % g.num_vcpus());
  }

  std::uint32_t pairs_;
  std::uint64_t exchanges_;
  Cycles think_;
  std::uint64_t seed_;
};

}  // namespace asman::workloads

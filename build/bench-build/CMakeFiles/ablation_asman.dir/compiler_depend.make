# Empty compiler generated dependencies file for ablation_asman.
# This may be replaced when dependencies are built.

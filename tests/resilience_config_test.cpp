// ResilienceConfig (and AdmissionConfig) zero-value defaulting: a
// zero-valued duration knob means "derive the documented default from the
// machine at start()", independently per field, and a caller-supplied
// non-zero value is never overridden. vcrd_ttl is the exception: zero
// means disabled, not defaulted.
#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "simcore/simulator.h"
#include "vmm/admission.h"
#include "vmm/hypervisor.h"

namespace asman::vmm {
namespace {

hw::MachineConfig small_machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

/// Start a hypervisor with the given knobs and return the resolved config.
ResilienceConfig resolved(const ResilienceConfig& r) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(2),
                             SchedMode::kNonWorkConserving);
  hv.set_resilience(r);
  hv.create_vm("A", 256, 1);
  hv.start();
  return hv.resilience();
}

TEST(ResilienceDefaults, IpiAckTimeoutZeroDerivesEightBusLatencies) {
  const hw::MachineConfig m = small_machine(2);
  const ResilienceConfig got = resolved({});
  EXPECT_EQ(got.ipi_ack_timeout.v, m.ipi_latency().v * 8);
}

TEST(ResilienceDefaults, GangWatchdogZeroDerivesTwoSlots) {
  const hw::MachineConfig m = small_machine(2);
  EXPECT_EQ(resolved({}).gang_watchdog.v, m.slot_cycles().v * 2);
}

TEST(ResilienceDefaults, FlapWindowZeroDerivesFiveSlots) {
  const hw::MachineConfig m = small_machine(2);
  EXPECT_EQ(resolved({}).flap_window.v, m.slot_cycles().v * 5);
}

TEST(ResilienceDefaults, DemoteBackoffZeroDerivesTwelveSlots) {
  const hw::MachineConfig m = small_machine(2);
  EXPECT_EQ(resolved({}).demote_backoff.v, m.slot_cycles().v * 12);
}

TEST(ResilienceDefaults, VcrdTtlZeroMeansDisabledNotDefaulted) {
  EXPECT_EQ(resolved({}).vcrd_ttl.v, 0u);
}

TEST(ResilienceDefaults, EachFieldDefaultsIndependently) {
  // Setting one field must not stop the others from deriving.
  ResilienceConfig r;
  r.gang_watchdog = Cycles{12'345};
  const hw::MachineConfig m = small_machine(2);
  const ResilienceConfig got = resolved(r);
  EXPECT_EQ(got.gang_watchdog.v, 12'345u);
  EXPECT_EQ(got.ipi_ack_timeout.v, m.ipi_latency().v * 8);
  EXPECT_EQ(got.flap_window.v, m.slot_cycles().v * 5);
  EXPECT_EQ(got.demote_backoff.v, m.slot_cycles().v * 12);
}

TEST(ResilienceDefaults, NonZeroValuesSurviveStartUntouched) {
  ResilienceConfig r;
  r.ipi_ack_timeout = Cycles{111};
  r.gang_watchdog = Cycles{222};
  r.flap_window = Cycles{333};
  r.demote_backoff = Cycles{444};
  r.vcrd_ttl = Cycles{555};
  r.ipi_max_retries = 9;
  r.watchdog_demote_after = 7;
  r.flap_limit = 3;
  const ResilienceConfig got = resolved(r);
  EXPECT_EQ(got.ipi_ack_timeout.v, 111u);
  EXPECT_EQ(got.gang_watchdog.v, 222u);
  EXPECT_EQ(got.flap_window.v, 333u);
  EXPECT_EQ(got.demote_backoff.v, 444u);
  EXPECT_EQ(got.vcrd_ttl.v, 555u);
  EXPECT_EQ(got.ipi_max_retries, 9u);
  EXPECT_EQ(got.watchdog_demote_after, 7u);
  EXPECT_EQ(got.flap_limit, 3u);
}

TEST(ResilienceDefaults, AdmissionRestoreBackoffZeroDerivesTwelveSlots) {
  sim::Simulator s;
  const hw::MachineConfig m = small_machine(2);
  core::AdaptiveScheduler hv(s, m, SchedMode::kNonWorkConserving);
  AdmissionConfig a;
  a.max_vcpus_per_pcpu = 4.0;
  hv.set_admission(a);
  hv.create_vm("A", 256, 1);
  hv.start();
  EXPECT_EQ(hv.admission().restore_backoff.v, m.slot_cycles().v * 12);

  sim::Simulator s2;
  core::AdaptiveScheduler hv2(s2, m, SchedMode::kNonWorkConserving);
  a.restore_backoff = Cycles{777};
  hv2.set_admission(a);
  hv2.create_vm("A", 256, 1);
  hv2.start();
  EXPECT_EQ(hv2.admission().restore_backoff.v, 777u);
}

}  // namespace
}  // namespace asman::vmm

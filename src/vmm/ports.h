// Interfaces between the VMM and guest kernels.
//
// The real system has two channels: the VMM maps/unmaps VCPUs onto PCPUs
// (guest-visible as time discontinuities), and the guest issues hypercalls
// (do_vcrd_op for the Monitoring Module, plus the usual halt/wake path that
// lets the VMM detect idle VCPUs). These two small interfaces are the whole
// coupling surface; guests never see scheduler internals.
#pragma once

#include <cstdint>

#include "vmm/types.h"

namespace asman::vmm {

/// Implemented by a guest kernel; invoked by the VMM scheduler.
class GuestPort {
 public:
  virtual ~GuestPort() = default;

  /// VCPU `vidx` was just mapped onto a PCPU and starts executing.
  virtual void vcpu_online(std::uint32_t vidx) = 0;

  /// VCPU `vidx` was descheduled; the guest must suspend all progress that
  /// depends on it (this is where lock-holder preemption originates).
  virtual void vcpu_offline(std::uint32_t vidx) = 0;
};

/// Implemented by the VMM; invoked by guest kernels (hypercalls).
class HypervisorPort {
 public:
  virtual ~HypervisorPort() = default;

  /// The paper's do_vcrd_op hypercall: the Monitoring Module reports the
  /// VM's new VCPU Related Degree.
  virtual void do_vcrd_op(VmId vm, Vcrd vcrd) = 0;

  /// Guest idle loop: no runnable thread on this VCPU — deschedule it
  /// until vcpu_kick. (Xen: SCHEDOP_block.)
  virtual void vcpu_block(VmId vm, std::uint32_t vidx) = 0;

  /// Wake a previously blocked VCPU (Xen: event channel notification).
  virtual void vcpu_kick(VmId vm, std::uint32_t vidx) = 0;

  /// Paravirtual yield notification (Xen: SCHEDOP_yield — issued by the
  /// guest's sched_yield path, i.e. by spin-wait loops). Unlike do_vcrd_op
  /// this requires no guest modification: stock PV kernels already emit
  /// it, which is what makes out-of-VM VCRD inference possible (the
  /// paper's future work, implemented in core::HwAdaptiveScheduler).
  virtual void vcpu_yield_hint(VmId vm, std::uint32_t vidx) { (void)vm; (void)vidx; }
};

}  // namespace asman::vmm

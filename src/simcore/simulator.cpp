#include "simcore/simulator.h"

namespace asman::sim {

std::uint64_t Simulator::run_until(Cycles deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    const Cycles t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    queue_.pop_and_run();
    ++n;
  }
  if (deadline != Cycles::max() && now_ < deadline) now_ = deadline;
  events_processed_ += n;
  return n;
}

std::uint64_t Simulator::run_while(Cycles deadline,
                                   const std::function<bool()>& pred) {
  std::uint64_t n = 0;
  while (!queue_.empty() && pred()) {
    const Cycles t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    queue_.pop_and_run();
    ++n;
  }
  events_processed_ += n;
  return n;
}

}  // namespace asman::sim

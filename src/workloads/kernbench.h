// Kernbench-style compile-farm workload.
//
// Friebel & Biemueller's lock-holder-preemption study ([28] in the paper)
// evaluated with kernbench: `make -jN` over a kernel tree — a pool of
// worker threads pulling independent compile jobs from a queue, with a
// serial link stage at the end of each pass. Synchronization is
// queue-centric (semaphores, i.e. blocking) with a single barrier-like
// join, which makes it an interesting middle ground between the pure-spin
// NPB codes and the SPEC rate workloads: mostly virtualization-tolerant,
// with a small coschedulable tail at the join.
#pragma once

#include <memory>

#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "workloads/workload.h"

namespace asman::workloads {

struct KernbenchParams {
  std::uint32_t workers{4};
  /// Compile jobs per pass and their cost distribution.
  std::uint32_t jobs_per_pass{120};
  Cycles job_mean{sim::kDefaultClock.from_us(8'000)};
  double job_cv{0.8};  // compile times are heavy-tailed
  /// Serial link stage at the end of each pass (one worker does it while
  /// the others wait at the join).
  Cycles link_cost{sim::kDefaultClock.from_us(40'000)};
  std::uint64_t passes{3};
  /// Memory footprint for the contention engine. Default: each compile
  /// job streams sources, ASTs and objects through ~1.5 MB per worker
  /// with little cross-job reuse — a bandwidth-heavy, cache-indifferent
  /// profile.
  hw::memsys::MemFootprint footprint{
      hw::memsys::make_footprint(4ULL * 1536 * 1024, 3'000'000'000ULL, 300)};
};

class KernbenchWorkload final : public Workload {
 public:
  KernbenchWorkload(sim::Simulator& simulation, KernbenchParams params,
                    std::uint64_t seed);
  ~KernbenchWorkload() override;

  void deploy(guest::GuestKernel& g) override;
  std::string name() const override { return "kernbench"; }
  std::uint64_t rounds_completed() const override;
  std::vector<Cycles> round_times() const override;
  /// Jobs compiled so far.
  std::uint64_t work_units() const override;
  hw::memsys::MemFootprint footprint() const override {
    return params_.footprint;
  }

  struct Shared;

 private:
  sim::Simulator& sim_;
  KernbenchParams params_;
  std::uint64_t seed_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace asman::workloads

// Cluster transfer seams: pause/resume (the stop-and-copy downtime
// window), migrate_out/migrate_in (the audited credit hand-off between
// hosts), and halt (host crash).
//
// The rules that keep every invariant intact across a transfer:
//
//   * credit is captured BEFORE the source records drain (drain_vcpu zeroes
//     residuals) and is seeded on the destination through one audited
//     writer (seed_credit), truncating-split and clamped exactly like an
//     accounting pass — so credit-bounds holds immediately and the next
//     accounting pass on either host sees a consistent pool,
//   * ownership is serial: migrate_out retires the source VM (tombstones,
//     id never reused) before migrate_in creates the destination VM, so no
//     event boundary ever observes the VM alive on two hosts,
//   * a paused VM is parked entirely in kBlocked through the audited
//     transition paths (legal from both kRunning-via-unmap and kRunnable),
//     and kicks latch instead of enqueueing — resume replays them,
//   * a halted host freezes audit-clean: every VCPU parks in kBlocked, the
//     self-re-arming tick/accounting events stop, hypercalls bounce
//     (counted), and the records stay readable for collection.
#include <cassert>
#include <vector>

#include "vmm/hypervisor.h"

namespace asman::vmm {

void Hypervisor::park_vcpu(Vcpu& w, std::vector<PcpuId>& freed) {
  if (w.cosched_clear_ev.valid()) {
    sim_.cancel(w.cosched_clear_ev);
    w.cosched_clear_ev = {};
  }
  w.cosched_boost = false;
  w.cosched_weak = false;
  w.wake_boost = false;
  switch (w.state) {
    case VcpuState::kRunning: {
      // Burn/charge through the normal unmap path (the guest sees its
      // offline callback), then park from kRunnable.
      const PcpuId p = w.where;
      Vcpu* u = unmap_current(p);
      set_state(*u, VcpuState::kBlocked);
      freed.push_back(p);
      break;
    }
    case VcpuState::kRunnable: {
      const bool removed = dequeue(w.where, &w);
      assert(removed);
      (void)removed;
      set_state(w, VcpuState::kBlocked);
      break;
    }
    case VcpuState::kBlocked:
    case VcpuState::kDestroyed:
      break;
  }
}

bool Hypervisor::pause_vm(VmId id) {
  if (id >= vms_.size() || !vms_[id]->alive) return false;
  Vm& v = *vms_[id];
  if (v.paused) return true;
  v.paused = true;
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  if (v.watchdog_ev.valid()) {
    sim_.cancel(v.watchdog_ev);
    v.watchdog_ev = {};
  }
  std::vector<PcpuId> freed;
  for (Vcpu& w : v.vcpus) {
    const bool held_work =
        w.state == VcpuState::kRunning || w.state == VcpuState::kRunnable;
    park_vcpu(w, freed);
    if (held_work) w.paused_pending = true;
  }
  redispatch_freed(freed);
  in_scheduler_ = was;
  note_trace(sim::TraceCat::kSched, v.name + " paused");
  audit_event(AuditPoint::kLifecycle);
  return true;
}

bool Hypervisor::resume_vm(VmId id) {
  if (id >= vms_.size() || !vms_[id]->alive) return false;
  Vm& v = *vms_[id];
  if (!v.paused) return true;
  v.paused = false;
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  for (Vcpu& w : v.vcpus) {
    const bool wake = w.paused_pending && !w.crashed;
    w.paused_pending = false;
    if (!wake || w.state != VcpuState::kBlocked) continue;
    if (!pcpus_[w.where].online) {
      // The home went offline during the pause; re-home like a wake does
      // (credit travels with the VCPU).
      const PcpuId stale = w.where;
      w.where = pick_online_home(id, stale);
      ++w.migrations;
      ++migrations_;
      note_migration(w, stale, w.where);
    }
    set_state(w, VcpuState::kRunnable);
    enqueue(w.where, &w);
  }
  // A resumed gang may have drifted onto shared homes while parked.
  if (cosched_eligible(v) &&
      (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
    relocate_vm(v);
  for (PcpuId q = 0; q < machine_.num_pcpus; ++q)
    if (pcpus_[q].online && pcpus_[q].current == nullptr) dispatch(q);
  in_scheduler_ = was;
  note_trace(sim::TraceCat::kSched, v.name + " resumed");
  audit_event(AuditPoint::kLifecycle);
  return true;
}

MigrationTicket Hypervisor::migrate_out(VmId id) {
  if (id >= vms_.size() || !vms_[id]->alive) return {};
  Vm& v = *vms_[id];
  MigrationTicket t;
  t.name = v.name;
  t.weight = v.weight;
  t.n_vcpus = static_cast<std::uint32_t>(v.num_vcpus());
  t.type = v.type;
  // Capture the pool before the drains below zero the residuals; widened
  // so the sum over any VCPU count cannot wrap.
  for (const Vcpu& w : v.vcpus)
    t.credit_pool += static_cast<__int128>(w.credit);
  // Retire the local records exactly like destroy_vm: dead first (no
  // dispatch path re-picks the VM), then audited drains into tombstones.
  v.alive = false;
  v.paused = false;
  v.destroyed_at = sim_.now();
  ++vm_migrations_out_;
  note_trace(sim::TraceCat::kSched, v.name + " migrated out");
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  if (v.watchdog_ev.valid()) {
    sim_.cancel(v.watchdog_ev);
    v.watchdog_ev = {};
  }
  if (v.vcrd == Vcrd::kHigh) {  // close the HIGH interval for statistics
    v.vcrd_high_time += sim_.now() - v.vcrd_high_since;
    v.vcrd = Vcrd::kLow;
  }
  std::vector<PcpuId> freed;
  for (Vcpu& w : v.vcpus) {
    w.paused_pending = false;
    drain_vcpu(w, freed);
  }
  v.guest = nullptr;  // after the drains, so offline callbacks reached it
  redispatch_freed(freed);
  maybe_restore_overload();
  in_scheduler_ = was;
  audit_event(AuditPoint::kLifecycle);
  return t;
}

VmId Hypervisor::migrate_in(const MigrationTicket& t, __int128* seeded) {
  if (seeded) *seeded = 0;
  if (!t.valid()) return kInvalidVmId;
  const VmId id = create_vm(t.name, t.weight, t.n_vcpus, t.type);
  if (id == kInvalidVmId) return id;  // admission reject: nothing seeded
  const __int128 s = seed_credit(id, t.credit_pool);
  if (seeded) *seeded = s;
  ++vm_migrations_in_;
  note_trace(sim::TraceCat::kSched, vm(id).name + " migrated in");
  audit_event(AuditPoint::kLifecycle);
  return id;
}

__int128 Hypervisor::seed_credit(VmId id, __int128 pool) {
  Vm& v = vm(id);
  const auto n = static_cast<__int128>(v.num_vcpus());
  // Truncating equal split, clamped to the saturation cap — byte for byte
  // the shape of Algorithm 3's re-split, so credit-bounds holds at this
  // very event and the next accounting pass redistributes consistently.
  __int128 share = pool / n;
  const auto cap = static_cast<__int128>(credit_cap_);
  if (share > cap) share = cap;
  if (share < -cap) share = -cap;
  __int128 seeded = 0;
  for (Vcpu& w : v.vcpus) {
    w.credit = static_cast<Credit>(share);
    seeded += share;
  }
  audit_seeded(id, pool);
  return seeded;
}

void Hypervisor::halt() {
  if (halted_) return;
  halted_ = true;
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  std::vector<PcpuId> freed;
  for (auto& vp : vms_) {
    Vm& v = *vp;
    if (v.watchdog_ev.valid()) {
      sim_.cancel(v.watchdog_ev);
      v.watchdog_ev = {};
    }
    if (!v.alive) continue;
    for (Vcpu& w : v.vcpus) park_vcpu(w, freed);
  }
  // Close the idle ledgers so pcpu_idle_total stays meaningful.
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    PcpuRec& pc = pcpus_[p];
    assert(pc.current == nullptr);
    if (pc.online && !pc.idle_marked) {
      pc.idle_marked = true;
      pc.idle_since = sim_.now();
    }
  }
  in_scheduler_ = was;
  note_trace(sim::TraceCat::kSched, "host halted");
  audit_event(AuditPoint::kFault);
}

}  // namespace asman::vmm

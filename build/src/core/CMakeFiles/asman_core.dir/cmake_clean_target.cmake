file(REMOVE_RECURSE
  "libasman_core.a"
)

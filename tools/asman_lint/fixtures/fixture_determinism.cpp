// Seeded-violation fixture for the `determinism` check (never compiled into
// any target; tests/lint_test.cpp runs asman_lint over it and asserts every
// planted violation is reported). Mirrors PR 1's seeded-violation auditor
// tests: each construct below smuggles host state into the simulation.
#include <cstdint>
#include <cstdlib>
#include <ctime>    // planted: nondeterministic header
#include <random>   // planted: nondeterministic header

namespace fixture {

int host_entropy() {
  return rand();  // planted: libc PRNG, unseeded by the simulation
}

void reseed() {
  srand(42);  // planted: global PRNG state
}

unsigned hw_entropy() {
  std::random_device rd;  // planted: hardware entropy source
  return rd();
}

long long wall_seconds() {
  return static_cast<long long>(std::time(nullptr));  // planted: wall clock
}

long long wall_epoch() {
  return std::chrono::system_clock::now().time_since_epoch().count();
  // planted above: system_clock
}

const char* host_config() {
  return std::getenv("FIXTURE_MODE");  // planted: environment read
}

struct Vcpu {
  int id;
};

bool address_order(const Vcpu& a, const Vcpu& b) {
  return &a < &b;  // planted: allocation-layout ordering
}

using PtrOrder = std::less<Vcpu*>;  // planted: ordering by pointer value

std::uint64_t layout_key(const Vcpu* v) {
  return reinterpret_cast<std::uintptr_t>(v);  // planted: pointer-to-int
}

}  // namespace fixture

# Empty compiler generated dependencies file for asman_experiments.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig08_spinwait_asman"
  "../bench/fig08_spinwait_asman.pdb"
  "CMakeFiles/fig08_spinwait_asman.dir/fig08_spinwait_asman.cpp.o"
  "CMakeFiles/fig08_spinwait_asman.dir/fig08_spinwait_asman.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_spinwait_asman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

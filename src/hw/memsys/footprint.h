// Memory footprint of a workload: working-set size plus a piecewise
// miss-rate curve (docs/MODEL.md §2.8).
//
// The contention engine needs exactly two facts about a VM's memory
// behaviour: how many LLC bytes its working set wants, and how its miss
// rate responds when it gets less than all of them. Both are captured
// here as plain integers — the curve is five miss-rate samples (permille)
// at 0/25/50/75/100 % working-set residency, linearly interpolated with
// integer arithmetic — so every downstream computation is deterministic
// and draws no RNG. A default-constructed (zero) footprint keeps the
// contention engine inert for that VM; an all-zero fleet keeps the engine
// inert machine-wide, bit-identical to the pre-contention simulator.
#pragma once

#include <array>
#include <cstdint>

namespace asman::hw::memsys {

struct MemFootprint {
  /// Bytes of last-level cache the workload wants resident. Zero means
  /// "no memory-system behaviour modeled" — the VM neither occupies LLC
  /// nor suffers contention slowdown.
  std::uint64_t working_set_bytes{0};

  /// Memory-bus traffic the workload would generate at a 100 % miss rate,
  /// in bytes per second. Actual demand scales with the achieved miss
  /// rate, so a fully cache-resident workload touches the bus lightly.
  std::uint64_t bandwidth_bytes_per_s{0};

  /// Miss rate (permille of accesses) sampled at 0, 25, 50, 75 and 100 %
  /// of the working set resident in LLC. Monotonically non-increasing for
  /// any physical workload; miss_permille[4] is the standalone (fully
  /// resident) baseline the contention delta is measured against.
  std::array<std::uint16_t, 5> miss_permille{{0, 0, 0, 0, 0}};

  bool zero() const { return working_set_bytes == 0; }

  /// Miss rate at `resident_permille` (0..1000) of the working set held
  /// in LLC: integer linear interpolation between the curve samples.
  std::uint32_t miss_at(std::uint32_t resident_permille) const {
    if (resident_permille >= 1000) return miss_permille[4];
    const std::uint32_t seg = resident_permille / 250;   // 0..3
    const std::uint32_t within = resident_permille % 250;
    const auto lo = static_cast<std::int32_t>(miss_permille[seg]);
    const auto hi = static_cast<std::int32_t>(miss_permille[seg + 1]);
    const std::int32_t v =
        lo + (hi - lo) * static_cast<std::int32_t>(within) / 250;
    return static_cast<std::uint32_t>(v < 0 ? 0 : v);
  }

  /// Extra misses (permille) caused by running at partial residency,
  /// relative to the standalone fully-resident baseline.
  std::uint32_t extra_miss_at(std::uint32_t resident_permille) const {
    const std::uint32_t now = miss_at(resident_permille);
    const std::uint32_t base = miss_permille[4];
    return now > base ? now - base : 0;
  }
};

/// Calibrated curve builder. `locality_permille` describes how strongly
/// the workload reuses its working set: 1000 = perfectly cache-friendly
/// (misses explode as residency shrinks), 0 = pure streaming (misses high
/// regardless, so eviction costs little extra). The generated curve is
/// monotone by construction.
inline MemFootprint make_footprint(std::uint64_t working_set_bytes,
                                   std::uint64_t bandwidth_bytes_per_s,
                                   std::uint32_t locality_permille) {
  MemFootprint f;
  f.working_set_bytes = working_set_bytes;
  f.bandwidth_bytes_per_s = bandwidth_bytes_per_s;
  if (working_set_bytes == 0) return f;
  if (locality_permille > 1000) locality_permille = 1000;
  // Baseline (fully resident) miss rate: streaming workloads miss a lot
  // even with the whole set resident; cache-friendly ones barely miss.
  const std::uint32_t base = 50 + (1000 - locality_permille) * 700 / 1000;
  // Fully evicted miss rate: cache-friendly sets pay the most for losing
  // residency.
  const std::uint32_t worst = base + locality_permille * 850 / 1000;
  f.miss_permille[4] = static_cast<std::uint16_t>(base);
  // Convex decay from worst to base as residency grows (quarter steps).
  const std::uint32_t span = worst - base;
  f.miss_permille[0] = static_cast<std::uint16_t>(worst);
  f.miss_permille[1] = static_cast<std::uint16_t>(base + span * 9 / 16);
  f.miss_permille[2] = static_cast<std::uint16_t>(base + span * 4 / 16);
  f.miss_permille[3] = static_cast<std::uint16_t>(base + span * 1 / 16);
  return f;
}

}  // namespace asman::hw::memsys

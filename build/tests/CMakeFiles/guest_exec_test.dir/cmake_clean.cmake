file(REMOVE_RECURSE
  "CMakeFiles/guest_exec_test.dir/guest_exec_test.cpp.o"
  "CMakeFiles/guest_exec_test.dir/guest_exec_test.cpp.o.d"
  "guest_exec_test"
  "guest_exec_test.pdb"
  "guest_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Barrier (spin-then-block), futex-backed mutex, and semaphore semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "guest_test_util.h"
#include "workloads/synthetic.h"

namespace asman::guest {
namespace {

using testutil::TestHv;
using testutil::quiet_config;
using workloads::LambdaProgram;
using workloads::ScriptProgram;

Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

TEST(Barrier, ReleasesAllParties) {
  sim::Simulator s;
  TestHv hv(4);
  GuestKernel g(s, hv, 0, quiet_config(4));
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                Op::compute(us(10 * (t + 1))), Op::barrier(bar)}),
            t);
    hv.map(t);
  }
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  // Everyone leaves at (roughly) the last arrival.
  EXPECT_GE(g.last_finish_time(), us(40));
  EXPECT_LT(g.last_finish_time(), us(80));
}

TEST(Barrier, FastPathStaysInUserSpace) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                Op::compute(us(5)), Op::barrier(bar)}),
            t);
    hv.map(t);
  }
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_EQ(g.stats().barrier_kernel_sleeps, 0u);  // resolved by spinning
  EXPECT_EQ(g.stats().futex_waits, 0u);
}

TEST(Barrier, SlowArrivalFallsBackToFutexSleep) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg = quiet_config(2);
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2);
  // Thread 1 arrives far beyond thread 0's spin budget.
  const Cycles skew{cfg.user_spin_limit.v * 5};
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::barrier(bar)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(skew), Op::barrier(bar)}),
          1);
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_GE(g.stats().barrier_kernel_sleeps, 1u);
  EXPECT_GE(g.stats().futex_waits, 1u);
  EXPECT_GE(g.stats().futex_wakes, 1u);
  // The sleeper's VCPU halted while it waited.
  EXPECT_FALSE(hv.blocks.empty());
}

TEST(Barrier, SpinOnlyBarrierNeverSleeps) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg = quiet_config(2);
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2, /*spin_only=*/true);
  const Cycles skew{cfg.user_spin_limit.v * 5};
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::barrier(bar)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(skew), Op::barrier(bar)}),
          1);
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_EQ(g.stats().barrier_kernel_sleeps, 0u);
  EXPECT_EQ(g.stats().futex_waits, 0u);
  // ... but the waiter's sched_yield cadence produced kernel lock traffic.
  EXPECT_GT(g.stats().spin_acquisitions, 5u);
}

TEST(Barrier, RepeatedIterationsNoLostWakeups) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2);
  sim::Rng rng(99);
  for (std::uint32_t t = 0; t < 2; ++t) {
    std::vector<Op> ops;
    for (int i = 0; i < 150; ++i) {
      ops.push_back(Op::compute(
          Cycles{rng.uniform(100, 2'200'000)}));  // straddles spin budget
      ops.push_back(Op::barrier(bar));
    }
    g.spawn(std::make_unique<ScriptProgram>(std::move(ops)), t);
    hv.map(t);
  }
  s.run_while(sim::kDefaultClock.from_seconds_f(20.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done()) << "lost wakeup: barrier deadlocked";
}

TEST(Mutex, CriticalSectionsNeverOverlap) {
  sim::Simulator s;
  TestHv hv(4);
  GuestKernel g(s, hv, 0, quiet_config(4));
  hv.bind(&g);
  const std::uint32_t mtx = g.create_mutex();
  struct Span {
    Cycles begin, end;
  };
  auto spans = std::make_shared<std::vector<Span>>();
  constexpr std::uint64_t kHold = 40'000;
  for (std::uint32_t t = 0; t < 4; ++t) {
    auto state = std::make_shared<int>(0);
    auto in_cs = std::make_shared<Cycles>();
    g.spawn(std::make_unique<LambdaProgram>(
                [&s, spans, state, in_cs, mtx]() -> Op {
                  // Phases: 0 request, 1..5 track completion of the
                  // previous critical op.
                  if (*state > 0 && *state <= 5) {
                    // Previous op was kCritical: it just finished.
                    spans->push_back(
                        Span{s.now() - Cycles{kHold + 100}, s.now()});
                  }
                  if (*state >= 5) return Op::done();
                  ++*state;
                  return Op::critical(mtx, Cycles{kHold});
                }),
            t);
    hv.map(t);
  }
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  ASSERT_EQ(spans->size(), 20u);
  std::sort(spans->begin(), spans->end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < spans->size(); ++i) {
    EXPECT_GE((*spans)[i].begin, (*spans)[i - 1].end - Cycles{200})
        << "critical sections overlapped at index " << i;
  }
}

TEST(Mutex, ContendedWaitersAllProceed) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  workloads::LockHammerWorkload wl(4, 50, us(20), us(5), 7);
  wl.deploy(g);
  for (std::uint32_t v = 0; v < 2; ++v) hv.map(v);
  s.run_while(sim::kDefaultClock.from_seconds_f(5.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done());
}

TEST(Semaphore, CountingSemantics) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  const std::uint32_t sem = g.create_semaphore(2);
  // Two waits pass immediately; the third blocks forever (no post).
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::sem_wait(sem), Op::sem_wait(sem), Op::sem_wait(sem)}),
          0);
  hv.map(0);
  s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
  EXPECT_FALSE(g.all_threads_done());
  EXPECT_EQ(g.stats().futex_waits, 0u);  // semaphores have their own queue
  EXPECT_FALSE(hv.blocks.empty());       // VCPU halted on the third wait
}

TEST(Semaphore, PostWakesInFifoOrder) {
  sim::Simulator s;
  TestHv hv(3);
  GuestKernel g(s, hv, 0, quiet_config(3));
  hv.bind(&g);
  const std::uint32_t sem = g.create_semaphore(0);
  // Consumers block in a deterministic order (staggered arrival).
  const Tid c0 = g.spawn(std::make_unique<ScriptProgram>(
                             std::vector<Op>{Op::sem_wait(sem)}),
                         0);
  const Tid c1 = g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                             Op::compute(us(50)), Op::sem_wait(sem)}),
                         1);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(us(500)), Op::sem_post(sem),
              Op::compute(us(500)), Op::sem_post(sem)}),
          2);
  for (std::uint32_t v = 0; v < 3; ++v) hv.map(v);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_LT(g.thread_finish_time(c0), g.thread_finish_time(c1));
}

TEST(Semaphore, PingPongCompletesAndWaitsStaySmall) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  workloads::SemaphorePingPongWorkload wl(1, 500, us(30), 3);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  s.run_while(sim::kDefaultClock.from_seconds_f(5.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_LT(g.stats().sem_waits.max_value(), sim::pow2_cycles(16));
  EXPECT_EQ(g.stats().sem_waits.total(), 1000u);
}

}  // namespace
}  // namespace asman::guest

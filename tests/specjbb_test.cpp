// SPECjbb model specifics: safepoint epochs, parallel GC sequencing,
// daemon threads, transaction accounting.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "workloads/specjbb.h"

namespace asman::workloads {
namespace {

using testutil::TestHv;
using testutil::quiet_config;

SpecJbbParams fast_params(std::uint32_t warehouses) {
  SpecJbbParams p;
  p.warehouses = warehouses;
  p.txn_mean = sim::kDefaultClock.from_us(100);
  p.safepoint_every_txns = 50;
  p.gc_phases = 3;
  p.gc_chunk = sim::kDefaultClock.from_us(50);
  return p;
}

TEST(SpecJbb, SafepointsRunAllGcPhases) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  SpecJbbWorkload wl(s, fast_params(2), 3);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
  const std::uint64_t txns = wl.work_units();
  ASSERT_GT(txns, 100u);
  const std::uint64_t epochs = txns / 50;
  // Every safepoint: each thread does 1 rendezvous + gc_phases barriers.
  const std::uint64_t expected_min = epochs * 2 * (1 + 3) * 8 / 10;
  EXPECT_GE(g.stats().barrier_arrivals, expected_min);
}

TEST(SpecJbb, DaemonsDoNotCountAsWork) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  SpecJbbParams p = fast_params(1);
  p.safepoint_every_txns = 0;  // isolate daemons
  p.daemons = 3;
  SpecJbbWorkload wl(s, p, 3);
  wl.deploy(g);
  EXPECT_EQ(g.num_threads(), 4u);  // 1 warehouse + 3 daemons
  hv.map(0);
  hv.map(1);
  s.run_until(sim::kDefaultClock.from_seconds_f(0.2));
  // ~100 us per txn on one warehouse -> roughly 2000 txns in 0.2 s; the
  // daemons' activity must not inflate the count.
  EXPECT_NEAR(static_cast<double>(wl.work_units()), 1900.0, 400.0);
}

TEST(SpecJbb, SafepointsCostThroughput) {
  auto txns = [](std::uint64_t every) {
    sim::Simulator s;
    TestHv hv(2);
    guest::GuestKernel g(s, hv, 0, quiet_config(2));
    hv.bind(&g);
    SpecJbbParams p = fast_params(2);
    p.safepoint_every_txns = every;
    p.daemons = 0;
    SpecJbbWorkload wl(s, p, 3);
    wl.deploy(g);
    hv.map(0);
    hv.map(1);
    s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
    return wl.work_units();
  };
  const auto with_gc = txns(50);
  const auto without_gc = txns(0);
  EXPECT_LT(static_cast<double>(with_gc),
            static_cast<double>(without_gc) * 0.995);
  EXPECT_GT(static_cast<double>(with_gc),
            static_cast<double>(without_gc) * 0.7);
}

TEST(SpecJbb, SharedLockFrequencyMatchesProbability) {
  sim::Simulator s;
  TestHv hv(4);
  guest::GuestKernel g(s, hv, 0, quiet_config(4));
  hv.bind(&g);
  SpecJbbParams p = fast_params(4);
  p.safepoint_every_txns = 0;
  p.daemons = 0;
  p.shared_lock_prob = 0.5;
  SpecJbbWorkload wl(s, p, 9);
  wl.deploy(g);
  for (std::uint32_t v = 0; v < 4; ++v) hv.map(v);
  s.run_until(sim::kDefaultClock.from_seconds_f(0.3));
  // Mutex ops show up as futex traffic only when contended; instead verify
  // via timing: with p=0.5 and 18 us holds, throughput drops measurably
  // versus p=0.
  const auto busy = wl.work_units();
  sim::Simulator s2;
  TestHv hv2(4);
  guest::GuestKernel g2(s2, hv2, 0, quiet_config(4));
  hv2.bind(&g2);
  p.shared_lock_prob = 0.0;
  SpecJbbWorkload wl2(s2, p, 9);
  wl2.deploy(g2);
  for (std::uint32_t v = 0; v < 4; ++v) hv2.map(v);
  s2.run_until(sim::kDefaultClock.from_seconds_f(0.3));
  EXPECT_LT(busy, wl2.work_units());
}

TEST(SpecJbb, NameIncludesWarehouseCount) {
  sim::Simulator s;
  SpecJbbWorkload wl(s, fast_params(6), 1);
  EXPECT_EQ(wl.name(), "SPECjbb(6wh)");
  EXPECT_FALSE(wl.finite());
}

}  // namespace
}  // namespace asman::workloads

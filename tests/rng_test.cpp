#include "simcore/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace asman::sim {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(1);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng parent(77);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  // Child derivation is deterministic.
  Rng p2(77);
  Rng c1b = p2.child(1);
  c1 = parent.child(1);
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, UniformInclusiveRange) {
  Rng r(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(12);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, PositiveJitterNeverBelowFloor) {
  Rng r(14);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.positive_jitter(1000.0, 0.8);
    EXPECT_GE(x, 50.0);  // 5 % floor
  }
  // cv = 0 means exact.
  EXPECT_DOUBLE_EQ(r.positive_jitter(123.0, 0.0), 123.0);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanOfUniformDoubles) {
  Rng r(GetParam());
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xdeadbeef));

}  // namespace
}  // namespace asman::sim

// Figure 12: six VMs running simultaneously (work-conserving mode).
//
//  (a) 4 high-throughput + 2 concurrent: bzip2, bzip2, gcc, gcc, SP, LU;
//  (b) 2 high-throughput + 4 concurrent: bzip2, gcc, SP, SP, LU, LU.
//
// Expected shape (paper §5.3): coscheduling saves up to ~45 % of SP's and
// ~70 % of LU's run time in (a), ~30 %/~60 % in (b); the throughput VMs
// degrade at most ~8 % under ASMan but ~18 % under CON (static
// over-coscheduling steals the extra time load balancing would hand them).
#include "bench_util.h"
#include "simcore/stats.h"
#include "workloads/npb.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr std::uint64_t kRounds = 6;  // 6 VMs: keep the Credit runs inside the horizon
constexpr std::uint64_t kFactoryRounds = 40;

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman,
                                           core::SchedulerKind::kCon};

struct Combo {
  const char* name;
  std::vector<std::pair<std::string, ex::WorkloadFactory>> vms;
  std::vector<bool> concurrent;
};

std::vector<Combo> combos() {
  std::vector<Combo> out;
  out.push_back(Combo{
      "a",
      {{"256.bzip2", ex::bzip2_factory(kFactoryRounds)},
       {"256.bzip2", ex::bzip2_factory(kFactoryRounds)},
       {"176.gcc", ex::gcc_factory(kFactoryRounds)},
       {"176.gcc", ex::gcc_factory(kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)},
       {"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)}},
      {false, false, false, false, true, true}});
  out.push_back(Combo{
      "b",
      {{"256.bzip2", ex::bzip2_factory(kFactoryRounds)},
       {"176.gcc", ex::gcc_factory(kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)},
       {"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)},
       {"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)}},
      {false, false, true, true, true, true}});
  return out;
}

Sweep build_sweep() {
  Sweep s;
  for (const Combo& c : combos()) {
    for (core::SchedulerKind k : kScheds) {
      auto vms = c.vms;
      ex::Scenario sc =
          ex::multi_vm_scenario(k, std::move(vms), c.concurrent, kRounds);
      s.add(std::string("combo") + c.name + "/" + core::to_string(k),
            std::move(sc));
    }
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  for (std::size_t i = 1; i < pr.run.vms.size(); ++i) {
    st.counters["vm" + std::to_string(i) + "_round_s"] =
        pr.run.vms[i].mean_round_seconds(kRounds);
  }
}

void print_combo(const Sweep& s, const Combo& c, const char* figure) {
  std::printf("\n== Figure %s: mean round time (s, first %llu rounds) ==\n",
              figure, static_cast<unsigned long long>(kRounds));
  std::vector<std::string> head{"workload (VM)"};
  for (core::SchedulerKind k : kScheds) head.push_back(core::to_string(k));
  head.push_back("ASMan vs Credit");
  head.push_back("CON vs Credit");
  head.push_back("cv (ASMan)");
  ex::TextTable t(head);
  for (std::size_t i = 0; i < c.vms.size(); ++i) {
    std::vector<std::string> row{c.vms[i].first + " (V" +
                                 std::to_string(i + 1) + ")"};
    double credit = 0, asman = 0, con = 0;
    for (core::SchedulerKind k : kScheds) {
      const auto& pr = s.get(std::string("combo") + c.name + "/" +
                             core::to_string(k));
      const double v = pr.run.vms[i + 1].mean_round_seconds(kRounds);
      row.push_back(ex::fmt_f(v));
      if (k == core::SchedulerKind::kCredit) credit = v;
      if (k == core::SchedulerKind::kAsman) asman = v;
      if (k == core::SchedulerKind::kCon) con = v;
    }
    row.push_back(ex::fmt_pct(1.0 - asman / credit));
    row.push_back(ex::fmt_pct(1.0 - con / credit));
    // Paper protocol (§5.3): means are reported with cv below 10 %.
    {
      const auto& pr = s.get(std::string("combo") + c.name + "/ASMan");
      sim::Summary sum;
      const auto& rs = pr.run.vms[i + 1].round_seconds;
      for (std::size_t ri = 0; ri < rs.size() && ri < kRounds; ++ri)
        sum.add(rs[ri]);
      row.push_back(ex::fmt_pct(sum.cv()));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.str().c_str());
}

void print_tables(const Sweep& s) {
  const auto cs = combos();
  print_combo(s, cs[0], "12(a)");
  print_combo(s, cs[1], "12(b)");
  std::printf(
      "\n(positive saving = coscheduling helped; for the throughput VMs a\n"
      " negative value is their degradation — expected small for ASMan,\n"
      " larger for CON.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig12", annotate, print_tables);
}

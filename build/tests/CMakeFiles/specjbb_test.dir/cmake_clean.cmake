file(REMOVE_RECURSE
  "CMakeFiles/specjbb_test.dir/specjbb_test.cpp.o"
  "CMakeFiles/specjbb_test.dir/specjbb_test.cpp.o.d"
  "specjbb_test"
  "specjbb_test.pdb"
  "specjbb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specjbb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Adversary bench: what does each attack class cost, and what does each
// defense level buy back?
//
// For every scheduler x attack the sweep runs the adversarial host (honest
// NPB/LU gang + CPU victim + one attacker VM, capped mode) at three
// defense levels: unhardened (tick-sampled accounting, the faithful
// arXiv 1103.0759 victim), mitigated (tick-sampled with seeded random
// sampling offsets) and hardened (exact accounting + BOOST rate limiter +
// VCRD plausibility clamp). The tables show the attacker's share against
// its 25% fair cap, the cycles it stole, and the defense counters that
// explain where the attack died. Run with ASMAN_AUDIT=1 to get the
// cycle-conservation invariant checked on every point.
#include "bench_util.h"
#include "experiments/adversary.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

constexpr const char* kLevels[] = {"unhardened", "mitigated", "hardened"};

constexpr std::uint64_t kSeed = 42;

std::string adv_label(core::SchedulerKind k, workloads::AttackKind a,
                      const char* level) {
  return std::string(core::to_string(k)) + "/" + workloads::to_string(a) +
         "/" + level;
}

ex::Scenario build_point(core::SchedulerKind k, workloads::AttackKind a,
                         const std::string& level) {
  ex::Scenario sc =
      ex::adversary_scenario(k, a, /*hardened=*/level == "hardened", kSeed);
  if (level == "mitigated") ex::apply_mitigated_sampling(sc);
  return sc;
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds)
    for (workloads::AttackKind a : workloads::kAllAttacks)
      for (const char* level : kLevels)
        s.add(adv_label(k, a, level), build_point(k, a, level));
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::RunResult& rr = pr.run;
  st.counters["attacker_share"] =
      rr.vm("Attacker").observed_online_rate;
  st.counters["victim_share"] = rr.vm("Victim").observed_online_rate;
  st.counters["theft_cycles"] = static_cast<double>(rr.theft_cycles);
  st.counters["dodged_samples"] = static_cast<double>(rr.dodged_samples);
  st.counters["boost_denials"] = static_cast<double>(rr.boost_denials);
  st.counters["implausible_vcrds"] =
      static_cast<double>(rr.implausible_vcrds);
  st.counters["fairness_min"] = rr.fairness_min;
}

void add_row(ex::TextTable& t, const char* label, const ex::RunResult& rr) {
  char stolen[32];
  std::snprintf(stolen, sizeof stolen, "%.2f",
                static_cast<double>(rr.theft_cycles) / 1e9);
  t.add_row({label, ex::fmt_pct(rr.vm("Attacker").observed_online_rate),
             ex::fmt_pct(rr.vm("Victim").observed_online_rate), stolen,
             std::to_string(rr.dodged_samples),
             std::to_string(rr.boost_denials),
             std::to_string(rr.implausible_vcrds)});
}

void print_tables(const Sweep& s) {
  for (core::SchedulerKind k : kScheds) {
    for (workloads::AttackKind a : workloads::kAllAttacks) {
      std::printf("\n== %s under %s (attacker fair share 25%%) ==\n",
                  workloads::to_string(a), core::to_string(k));
      ex::TextTable t({"defense level", "attacker", "victim",
                       "stolen Gcyc", "dodged", "boost denials",
                       "implausible VCRDs"});
      for (const char* level : kLevels)
        add_row(t, level, s.get(adv_label(k, a, level)).run);
      std::printf("%s", t.str().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "adversary", annotate,
                        print_tables);
}

#include "flow.h"

#include <algorithm>
#include <deque>
#include <map>

#include "analyzer.h"
#include "lexer.h"

namespace asman_lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

/// Recursive-descent CFG builder. Nodes are statements; control headers
/// (if/while/for/switch conditions) are their own nodes so path witnesses
/// name the branch that was taken.
class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Token>& toks,
             const std::vector<std::string>& exhaustive_enums)
      : t_(toks), universe_(exhaustive_enums) {}

  Cfg build(std::size_t body_begin, std::size_t body_end) {
    cfg_.nodes.clear();
    cfg_.entry = new_node(body_begin, body_begin, /*entry=*/true);
    cfg_.exit = new_node(body_end, body_end, /*entry=*/false, /*exit=*/true);
    std::vector<std::size_t> exits =
        parse_seq(body_begin + 1, body_end > 0 ? body_end - 1 : body_end,
                  {cfg_.entry});
    link_all(exits, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  struct LoopCtx {
    std::vector<std::size_t> breaks;
    std::size_t continue_target;  // npos in switch contexts
    bool is_switch;
  };

  std::size_t new_node(std::size_t b, std::size_t e, bool entry = false,
                       bool exit = false) {
    CfgNode n;
    n.tok_begin = b;
    n.tok_end = e;
    n.line = b < t_.size() ? t_[b].line : (t_.empty() ? 0 : t_.back().line);
    n.is_entry = entry;
    n.is_exit = exit;
    cfg_.nodes.push_back(std::move(n));
    return cfg_.nodes.size() - 1;
  }

  void link(std::size_t from, std::size_t to) {
    auto& s = cfg_.nodes[from].succ;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }
  void link_all(const std::vector<std::size_t>& from, std::size_t to) {
    for (std::size_t f : from) link(f, to);
  }

  /// End of the plain statement starting at `i`: first top-level `;`
  /// (inclusive). Nested (), [], {} — lambdas, braced init — are absorbed.
  std::size_t stmt_end(std::size_t i, std::size_t end) const {
    int depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      if (t_[j].kind != Tok::kPunct) continue;
      const std::string& x = t_[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (x == ";" && depth <= 0) return j + 1;
    }
    return end;
  }

  struct Parsed {
    std::size_t next;
    std::vector<std::size_t> exits;
  };

  /// Parses statements in [i, end), with `preds` flowing into the first
  /// one; returns the dangling exits of the last.
  std::vector<std::size_t> parse_seq(std::size_t i, std::size_t end,
                                     std::vector<std::size_t> preds) {
    while (i < end) {
      Parsed p = parse_stmt(i, end, preds);
      preds = std::move(p.exits);
      i = p.next;
    }
    return preds;
  }

  Parsed parse_stmt(std::size_t i, std::size_t end,
                    const std::vector<std::size_t>& preds) {
    const Token& tok = t_[i];

    if (is_punct(tok, ";")) return {i + 1, preds};

    if (is_punct(tok, "{")) {
      std::size_t m = match_forward(t_, i);
      if (m >= end) return {end, preds};
      return {m + 1, parse_seq(i + 1, m, preds)};
    }

    if (is_ident(tok, "if")) return parse_if(i, end, preds);
    if (is_ident(tok, "while")) return parse_while(i, end, preds);
    if (is_ident(tok, "for")) return parse_for(i, end, preds);
    if (is_ident(tok, "do")) return parse_do(i, end, preds);
    if (is_ident(tok, "switch")) return parse_switch(i, end, preds);
    if (is_ident(tok, "try")) return parse_try(i, end, preds);

    if (is_ident(tok, "break") || is_ident(tok, "continue")) {
      const std::size_t se = stmt_end(i, end);
      const std::size_t n = new_node(i, se);
      link_all(preds, n);
      if (tok.text == "break") {
        if (!loops_.empty()) loops_.back().breaks.push_back(n);
      } else {
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
          if (it->is_switch) continue;  // continue skips switch contexts
          if (it->continue_target != Cfg::npos)
            link(n, it->continue_target);
          break;
        }
      }
      return {se, {}};
    }

    if (is_ident(tok, "return") || is_ident(tok, "throw")) {
      const std::size_t se = stmt_end(i, end);
      const std::size_t n = new_node(i, se);
      link_all(preds, n);
      link(n, cfg_.exit);
      return {se, {}};
    }

    // Plain statement (includes declarations, expression statements, and
    // `goto`-free labels, which this codebase does not use).
    const std::size_t se = stmt_end(i, end);
    const std::size_t n = new_node(i, se);
    link_all(preds, n);
    return {se, {n}};
  }

  Parsed parse_if(std::size_t i, std::size_t end,
                  const std::vector<std::size_t>& preds) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return {i + 1, preds};
    std::size_t close = match_forward(t_, i + 1);
    if (close >= end) return {end, preds};
    // `if constexpr (...)`: the keyword sits between if and '('.
    const std::size_t cond = new_node(i, close + 1);
    cfg_.nodes[cond].kind = CfgNodeKind::kBranch;
    link_all(preds, cond);
    Parsed then = parse_stmt(close + 1, end, {cond});
    std::vector<std::size_t> exits = then.exits;
    std::size_t next = then.next;
    if (next < end && is_ident(t_[next], "else")) {
      Parsed els = parse_stmt(next + 1, end, {cond});
      exits.insert(exits.end(), els.exits.begin(), els.exits.end());
      next = els.next;
    } else {
      exits.push_back(cond);  // fallthrough when the condition is false
    }
    return {next, exits};
  }

  Parsed parse_while(std::size_t i, std::size_t end,
                     const std::vector<std::size_t>& preds) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return {i + 1, preds};
    std::size_t close = match_forward(t_, i + 1);
    if (close >= end) return {end, preds};
    const std::size_t cond = new_node(i, close + 1);
    cfg_.nodes[cond].kind = CfgNodeKind::kBranch;
    link_all(preds, cond);
    loops_.push_back({{}, cond, false});
    Parsed body = parse_stmt(close + 1, end, {cond});
    link_all(body.exits, cond);
    std::vector<std::size_t> exits = std::move(loops_.back().breaks);
    loops_.pop_back();
    exits.push_back(cond);
    return {body.next, exits};
  }

  Parsed parse_for(std::size_t i, std::size_t end,
                   const std::vector<std::size_t>& preds) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return {i + 1, preds};
    std::size_t close = match_forward(t_, i + 1);
    if (close >= end) return {end, preds};
    const std::size_t head = new_node(i, close + 1);
    cfg_.nodes[head].kind = CfgNodeKind::kForHead;
    link_all(preds, head);
    loops_.push_back({{}, head, false});
    Parsed body = parse_stmt(close + 1, end, {head});
    link_all(body.exits, head);
    std::vector<std::size_t> exits = std::move(loops_.back().breaks);
    loops_.pop_back();
    exits.push_back(head);
    return {body.next, exits};
  }

  Parsed parse_do(std::size_t i, std::size_t end,
                  const std::vector<std::size_t>& preds) {
    loops_.push_back({{}, Cfg::npos, false});
    Parsed body = parse_stmt(i + 1, end, preds);
    std::size_t next = body.next;
    std::vector<std::size_t> cond_preds = body.exits;
    std::vector<std::size_t> exits;
    if (next < end && is_ident(t_[next], "while") && next + 1 < end &&
        is_punct(t_[next + 1], "(")) {
      std::size_t close = match_forward(t_, next + 1);
      if (close < end) {
        const std::size_t cond = new_node(next, close + 1);
        link_all(cond_preds, cond);
        // Back edge: loop again through the body's entry. The body entry
        // is the first node created after the do; approximate with the
        // condition itself (sound for marker queries: the repeat path
        // revisits the same statements DFS already explored).
        exits.push_back(cond);
        // Patch pending continues to the condition.
        next = stmt_end(close + 1, end);
      }
    }
    for (std::size_t b : loops_.back().breaks) exits.push_back(b);
    loops_.pop_back();
    if (exits.empty()) exits = cond_preds;
    return {next, exits};
  }

  Parsed parse_try(std::size_t i, std::size_t end,
                   const std::vector<std::size_t>& preds) {
    // try { A } catch (...) { B }: B may run after any prefix of A, so it
    // conservatively gets the same preds as A; exits are the union.
    Parsed body = parse_stmt(i + 1, end, preds);
    std::vector<std::size_t> exits = body.exits;
    std::size_t next = body.next;
    while (next < end && is_ident(t_[next], "catch")) {
      std::size_t close = next + 1 < end && is_punct(t_[next + 1], "(")
                              ? match_forward(t_, next + 1)
                              : next + 1;
      if (close >= end) break;
      Parsed h = parse_stmt(close + 1, end, preds);
      exits.insert(exits.end(), h.exits.begin(), h.exits.end());
      next = h.next;
    }
    return {next, exits};
  }

  Parsed parse_switch(std::size_t i, std::size_t end,
                      const std::vector<std::size_t>& preds) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return {i + 1, preds};
    std::size_t close = match_forward(t_, i + 1);
    if (close >= end || close + 1 >= end || !is_punct(t_[close + 1], "{"))
      return {close + 1, preds};
    const std::size_t body_open = close + 1;
    const std::size_t body_close = match_forward(t_, body_open);
    if (body_close >= end) return {end, preds};

    const std::size_t cond = new_node(i, close + 1);
    link_all(preds, cond);
    loops_.push_back({{}, Cfg::npos, true});

    // Split the body into label groups and their statement runs.
    bool has_default = false;
    std::vector<std::string> label_idents;
    std::vector<std::size_t> fall;  // exits of the previous section
    std::size_t j = body_open + 1;
    while (j < body_close) {
      if (is_ident(t_[j], "case") || is_ident(t_[j], "default")) {
        // Consume the run of consecutive labels as one label node.
        const std::size_t lb = j;
        while (j < body_close &&
               (is_ident(t_[j], "case") || is_ident(t_[j], "default"))) {
          if (t_[j].text == "default") has_default = true;
          std::size_t k = j + 1;
          while (k < body_close && !is_punct(t_[k], ":")) {
            if (t_[k].kind == Tok::kIdent) label_idents.push_back(t_[k].text);
            ++k;
          }
          j = k < body_close ? k + 1 : body_close;
        }
        const std::size_t label = new_node(lb, j);
        link(cond, label);
        // Fallthrough from the previous section bypasses label evaluation
        // semantically, but linking through the label node is the sound
        // approximation available here only if it adds no marker evidence;
        // link the previous exits to the label's successor instead by
        // funneling them into the label node's own successors via a
        // dedicated join: keep it simple and link to the first statement
        // by letting the section parse receive both.
        std::vector<std::size_t> sec_preds = fall;
        sec_preds.push_back(label);
        // Parse the section: statements up to the next top-level label.
        std::size_t sec_begin = j;
        std::size_t sec_end = sec_begin;
        int depth = 0;
        while (sec_end < body_close) {
          const Token& c = t_[sec_end];
          if (c.kind == Tok::kPunct) {
            const std::string& x = c.text;
            if (x == "(" || x == "[" || x == "{") ++depth;
            else if (x == ")" || x == "]" || x == "}") --depth;
          }
          if (depth == 0 &&
              (is_ident(c, "case") || is_ident(c, "default")) &&
              sec_end != sec_begin)
            break;
          ++sec_end;
        }
        fall = parse_seq(sec_begin, sec_end, sec_preds);
        j = sec_end;
        continue;
      }
      ++j;  // stray tokens before the first label (unused in practice)
    }

    std::vector<std::size_t> exits = std::move(loops_.back().breaks);
    loops_.pop_back();
    exits.insert(exits.end(), fall.begin(), fall.end());
    if (!has_default) {
      // "No case matched" bypass — unless the label set provably covers
      // the whole enumerator universe (supplied from the shared spec).
      bool exhaustive = !universe_.empty();
      for (const std::string& u : universe_) {
        if (std::find(label_idents.begin(), label_idents.end(), u) ==
            label_idents.end()) {
          exhaustive = false;
          break;
        }
      }
      if (!exhaustive) exits.push_back(cond);
    }
    return {body_close + 1, exits};
  }

  const std::vector<Token>& t_;
  const std::vector<std::string>& universe_;
  Cfg cfg_;
  std::vector<LoopCtx> loops_;
};

std::optional<std::vector<std::size_t>> dfs_avoiding(
    const Cfg& cfg, std::size_t start, std::size_t goal,
    const NodePred& marker, std::size_t exempt) {
  // Reachability over the marker-free subgraph; `exempt` (the query's
  // target) may carry the marker itself without blocking.
  std::vector<std::size_t> parent(cfg.nodes.size(), Cfg::npos);
  std::vector<bool> seen(cfg.nodes.size(), false);
  std::deque<std::size_t> work{start};
  seen[start] = true;
  while (!work.empty()) {
    const std::size_t n = work.front();
    work.pop_front();
    if (n == goal) {
      std::vector<std::size_t> path;
      for (std::size_t c = goal; c != Cfg::npos; c = parent[c])
        path.push_back(c);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (std::size_t s : cfg.nodes[n].succ) {
      if (seen[s]) continue;
      if (s != exempt && s != goal && marker(cfg.nodes[s])) continue;
      seen[s] = true;
      parent[s] = n;
      work.push_back(s);
    }
  }
  return std::nullopt;
}

}  // namespace

std::size_t Cfg::node_of(std::size_t i) const {
  for (std::size_t n = 0; n < nodes.size(); ++n)
    if (!nodes[n].is_entry && !nodes[n].is_exit && i >= nodes[n].tok_begin &&
        i < nodes[n].tok_end)
      return n;
  return npos;
}

Cfg build_cfg(const std::vector<Token>& toks, std::size_t body_begin,
              std::size_t body_end,
              const std::vector<std::string>& exhaustive_enums) {
  CfgBuilder b(toks, exhaustive_enums);
  return b.build(body_begin, body_end);
}

std::optional<std::vector<std::size_t>> path_to_avoiding(
    const Cfg& cfg, std::size_t target, const NodePred& marker) {
  if (marker(cfg.nodes[cfg.entry])) return std::nullopt;
  return dfs_avoiding(cfg, cfg.entry, target, marker, target);
}

std::optional<std::vector<std::size_t>> path_from_avoiding(
    const Cfg& cfg, std::size_t target, const NodePred& marker) {
  return dfs_avoiding(cfg, target, cfg.exit, marker, target);
}

std::vector<TraceStep> trace_of_path(const Cfg& cfg,
                                     const std::vector<std::size_t>& path,
                                     const std::vector<Token>& toks) {
  std::vector<TraceStep> steps;
  for (std::size_t n : path) {
    const CfgNode& node = cfg.nodes[n];
    if (node.is_entry) {
      steps.push_back({node.line, "function entry"});
      continue;
    }
    if (node.is_exit) {
      steps.push_back({node.line, "function exit"});
      continue;
    }
    std::string snippet;
    const std::size_t last = std::min(node.tok_end, node.tok_begin + 8);
    for (std::size_t k = node.tok_begin; k < last && k < toks.size(); ++k) {
      if (!snippet.empty()) snippet += ' ';
      snippet += toks[k].text;
    }
    if (node.tok_end > last) snippet += " ...";
    steps.push_back({node.line, snippet});
  }
  return steps;
}

bool TransitionSpec::allows(const std::string& from,
                            const std::string& to) const {
  for (const auto& [f, t] : legal)
    if (f == from && t == to) return true;
  return false;
}

namespace {

/// Lexes `<root>/<rel_path>` and extracts the (from, to) pairs from the
/// brace initializer of `table_ident` — every `<enum_name> :: <ident>`
/// occurrence inside it, taken pairwise. Works for any machine whose spec
/// follows the plain-constexpr-array shape (state_spec.h documents it).
TransitionSpec load_transition_spec(const std::string& root,
                                    const std::string& rel_path,
                                    const std::string& table_ident,
                                    const std::string& enum_name) {
  TransitionSpec spec;
  const std::string path = root + "/" + rel_path;
  FileUnit unit;
  std::string err;
  if (!lex_path(path, rel_path, unit, err)) {
    spec.error = "cannot read transition spec " + path + ": " + err;
    return spec;
  }
  const std::vector<Token>& t = unit.toks;
  std::size_t table = t.size();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], table_ident.c_str())) {
      table = i;
      break;
    }
  }
  std::size_t open = t.size();
  for (std::size_t i = table; i < t.size(); ++i) {
    if (is_punct(t[i], "{")) {
      open = i;
      break;
    }
  }
  if (open >= t.size()) {
    spec.error = table_ident + " initializer not found in " + path;
    return spec;
  }
  const std::size_t close = match_forward(t, open);
  std::vector<std::string> enums;
  for (std::size_t i = open; i < close && i + 2 < t.size(); ++i) {
    if (is_ident(t[i], enum_name.c_str()) && is_punct(t[i + 1], "::") &&
        t[i + 2].kind == Tok::kIdent)
      enums.push_back(t[i + 2].text);
  }
  if (enums.size() < 2 || enums.size() % 2 != 0) {
    spec.error = "malformed " + table_ident + " table in " + path;
    return spec;
  }
  for (std::size_t i = 0; i + 1 < enums.size(); i += 2) {
    spec.legal.emplace_back(enums[i], enums[i + 1]);
    for (const std::string& e : {enums[i], enums[i + 1]}) {
      if (std::find(spec.states.begin(), spec.states.end(), e) ==
          spec.states.end())
        spec.states.push_back(e);
    }
  }
  return spec;
}

const TransitionSpec& cached_spec(const Options& options,
                                  const std::string& rel_path,
                                  const std::string& table_ident,
                                  const std::string& enum_name) {
  static std::map<std::string, TransitionSpec> cache;
  const std::string root = options.root.empty() ? "." : options.root;
  const std::string key = root + "|" + rel_path;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  return cache
      .emplace(key,
               load_transition_spec(root, rel_path, table_ident, enum_name))
      .first->second;
}

}  // namespace

const TransitionSpec& vcpu_transition_spec(const Options& options) {
  return cached_spec(options, "src/vmm/state_spec.h", "kLegalVcpuTransitions",
                     "VcpuState");
}

const TransitionSpec& migration_transition_spec(const Options& options) {
  return cached_spec(options, "src/cluster/migration_spec.h",
                     "kLegalMigrationTransitions", "MigrationPhase");
}

void CallGraph::add_unit(const FileUnit& unit) {
  const std::vector<Token>& t = unit.toks;
  const FunctionIndex fidx(unit);

  // File-scope mutable statics: a `static` outside every function span
  // whose declaration reaches `;` without const/constexpr and without
  // opening a function/class body first.
  std::unordered_map<std::string, int> statics;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "static") || fidx.enclosing(i) != nullptr) continue;
    bool mutable_var = true;
    bool seen_eq = false;
    std::string name;
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
      const Token& c = t[j];
      if (c.kind == Tok::kPunct) {
        if (c.text == "(" && depth == 0 && !seen_eq) {
          // `static T f(...)` — a function declaration, not a variable.
          mutable_var = false;
          break;
        }
        if (c.text == "(" || c.text == "<") ++depth;
        else if (c.text == ")" || c.text == ">") --depth;
        else if (c.text == "{" && depth == 0) {
          mutable_var = false;  // function or class definition
          break;
        } else if (c.text == ";" && depth == 0) {
          break;
        } else if (c.text == "=" && depth == 0) {
          seen_eq = true;
          break;  // name precedes the initializer
        }
      }
      if (c.kind == Tok::kIdent) {
        if (c.text == "const" || c.text == "constexpr" ||
            c.text == "constinit") {
          mutable_var = false;
          break;
        }
        name = c.text;
      }
    }
    if (mutable_var && !name.empty()) statics.emplace(name, t[i].line);
  }

  for (const FunctionSpan& s : fidx.spans()) {
    FnInfo& fn = functions[s.name];
    fn.file = unit.display_path;
    for (std::size_t i = s.begin; i < s.end && i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      // Callee collection: ident '(' not preceded by member-decl noise.
      if (is_punct(t[i + 1], "(")) fn.callees.insert(t[i].text);
      // Static mutation: `name =`/`name +=`/`++name`… for a known static.
      auto st = statics.find(t[i].text);
      if (st != statics.end()) {
        const bool assigned =
            (t[i + 1].kind == Tok::kPunct &&
             (t[i + 1].text == "=" || t[i + 1].text == "+=" ||
              t[i + 1].text == "-=" || t[i + 1].text == "*=" ||
              t[i + 1].text == "/=" || t[i + 1].text == "++" ||
              t[i + 1].text == "--")) ||
            (i > s.begin && t[i - 1].kind == Tok::kPunct &&
             (t[i - 1].text == "++" || t[i - 1].text == "--"));
        if (assigned) fn.static_writes.emplace(t[i].text, t[i].line);
      }
    }
    const std::size_t dot = s.name.rfind("::");
    const std::string simple =
        dot == std::string::npos ? s.name : s.name.substr(dot + 2);
    by_simple_name[simple].push_back(s.name);
  }
}

std::optional<CallGraph::StaticWrite> CallGraph::find_static_write(
    const std::unordered_set<std::string>& roots, int depth) const {
  struct Item {
    std::string qualified;
    std::vector<std::string> chain;
    int hops;
  };
  std::deque<Item> work;
  std::unordered_set<std::string> seen;
  for (const std::string& r : roots) {
    auto it = by_simple_name.find(r);
    if (it == by_simple_name.end()) continue;
    for (const std::string& q : it->second) {
      if (seen.insert(q).second) work.push_back({q, {q}, 0});
    }
  }
  while (!work.empty()) {
    Item cur = std::move(work.front());
    work.pop_front();
    auto fit = functions.find(cur.qualified);
    if (fit == functions.end()) continue;
    const FnInfo& info = fit->second;
    if (!info.static_writes.empty()) {
      const auto& [name, line] = *info.static_writes.begin();
      return StaticWrite{cur.qualified, name, info.file, line, cur.chain};
    }
    if (cur.hops >= depth) continue;
    for (const std::string& callee : info.callees) {
      auto cit = by_simple_name.find(callee);
      if (cit == by_simple_name.end()) continue;
      for (const std::string& q : cit->second) {
        if (!seen.insert(q).second) continue;
        Item next{q, cur.chain, cur.hops + 1};
        next.chain.push_back(q);
        work.push_back(std::move(next));
      }
    }
  }
  return std::nullopt;
}

}  // namespace asman_lint

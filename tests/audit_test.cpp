// Auditor tests: a clean scheduler run audits clean, and each invariant
// class is provably detected via seeded violations (deliberate corruption
// of hypervisor state, or synthetic sink streams for the stateful checks).
#include "audit/auditor.h"

#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "experiments/scenario.h"
#include "hw/memsys/footprint.h"
#include "simcore/simulator.h"
#include "vmm/hypervisor.h"

namespace asman::audit {
namespace {

using vmm::Vcpu;
using vmm::VcpuState;
using vmm::VmId;

hw::MachineConfig small_machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

sim::Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

/// Two compute-only VMs on 4 PCPUs under ASMan, auditor attached.
struct Rig {
  sim::Simulator sim;
  core::AdaptiveScheduler hv;
  VmId v0, v1;
  Auditor auditor;

  explicit Rig(AuditorConfig cfg = {})
      : hv(sim, small_machine(4), vmm::SchedMode::kNonWorkConserving),
        v0(hv.create_vm("V0", 256, 2)),
        v1(hv.create_vm("V1", 128, 3)),
        auditor(sim, hv, cfg) {}
};

std::uint64_t violations(const Auditor& a, Invariant inv) {
  return a.report().entry(inv).violations;
}

TEST(Auditor, CleanRunReportsNoViolations) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.5));
  // Raise V1 to HIGH mid-run so the gang-coherence scan has a gang to audit.
  r.hv.do_vcrd_op(r.v1, vmm::Vcrd::kHigh);
  r.sim.run_until(seconds(1.0));
  r.auditor.check_now();
  const AuditReport& rep = r.auditor.report();
  EXPECT_GT(rep.events, 100u);
  EXPECT_GT(rep.full_scans, 100u);
  EXPECT_GT(rep.entry(Invariant::kCreditBounds).checks, 0u);
  EXPECT_GT(rep.entry(Invariant::kCreditConservation).checks, 0u);
  EXPECT_GT(rep.entry(Invariant::kQueuePartition).checks, 0u);
  EXPECT_GT(rep.entry(Invariant::kStateMachine).checks, 0u);
  EXPECT_GT(rep.entry(Invariant::kGangCoherence).checks, 0u);
  EXPECT_GT(rep.entry(Invariant::kTimeMonotonic).checks, 0u);
  EXPECT_EQ(rep.total_violations(), 0u);
  EXPECT_TRUE(rep.clean());
}

TEST(Auditor, StrideSkipsFullScansButKeepsLedgerChecks) {
  AuditorConfig cfg;
  cfg.stride = 64;
  Rig dense;
  Rig sparse(cfg);
  dense.hv.start();
  sparse.hv.start();
  dense.sim.run_until(seconds(0.5));
  sparse.sim.run_until(seconds(0.5));
  EXPECT_LT(sparse.auditor.report().full_scans,
            dense.auditor.report().full_scans / 8);
  EXPECT_EQ(sparse.auditor.report()
                .entry(Invariant::kCreditConservation)
                .checks,
            dense.auditor.report()
                .entry(Invariant::kCreditConservation)
                .checks);
  EXPECT_TRUE(sparse.auditor.report().clean());
}

TEST(Auditor, DetectsCreditBoundViolation) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  r.hv.vm(r.v1).vcpus[0].credit = 10 * r.hv.credit_cap();
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kCreditBounds), 1u);
  EXPECT_FALSE(r.auditor.report().clean());
  EXPECT_NE(r.auditor.report()
                .entry(Invariant::kCreditBounds)
                .first_offender.find("v1.0"),
            std::string::npos);
}

TEST(Auditor, DetectsVcpuDuplicatedAcrossRunQueues) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Find a queued VCPU and push the same record onto another PCPU's queue —
  // exactly the double-enqueue bug class the partition invariant exists for.
  Vcpu* dup = nullptr;
  for (hw::PcpuId p = 0; p < r.hv.machine().num_pcpus && !dup; ++p)
    for (Vcpu* v : r.hv.runqueue(p).entries()) {
      dup = v;
      break;
    }
  ASSERT_NE(dup, nullptr) << "expected at least one queued VCPU";
  const hw::PcpuId other =
      static_cast<hw::PcpuId>((dup->where + 1) % r.hv.machine().num_pcpus);
  r.hv.mutable_runqueue(other).push(dup);
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kQueuePartition), 1u);
}

TEST(Auditor, DetectsOrphanedRunnableVcpu) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  Vcpu* orphan = nullptr;
  for (hw::PcpuId p = 0; p < r.hv.machine().num_pcpus && !orphan; ++p)
    for (Vcpu* v : r.hv.runqueue(p).entries()) {
      orphan = v;
      break;
    }
  ASSERT_NE(orphan, nullptr);
  // Drop it from its queue while leaving it kRunnable: now nothing will
  // ever dispatch it (a lost-VCPU bug).
  ASSERT_TRUE(r.hv.mutable_runqueue(orphan->where).remove(orphan));
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kQueuePartition), 1u);
}

TEST(Auditor, DetectsCreditConservationViolation) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Replay an accounting pass by hand: snapshot the pools, then corrupt a
  // credit before reporting the mint. The recomputed redistribution no
  // longer matches the live state.
  r.auditor.on_sched_event(vmm::AuditPoint::kAccountingBegin);
  r.hv.vm(r.v1).vcpus[1].credit += 12345;
  r.auditor.on_accounting(r.v1, 0);
  EXPECT_GE(violations(r.auditor, Invariant::kCreditConservation), 1u);
}

TEST(Auditor, DetectsOverMint) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  r.auditor.on_sched_event(vmm::AuditPoint::kAccountingBegin);
  const std::int64_t total = static_cast<std::int64_t>(4) *
                             vmm::kCreditPerSlot *
                             r.hv.machine().slots_per_accounting;
  r.auditor.on_accounting(r.v1, total + 1);
  EXPECT_GE(violations(r.auditor, Invariant::kCreditConservation), 1u);
}

TEST(Auditor, DetectsCycleConservationViolation) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  EXPECT_GT(r.auditor.report().entry(Invariant::kCycleConservation).checks,
            0u);
  EXPECT_EQ(violations(r.auditor, Invariant::kCycleConservation), 0u);
  // Inflate a VM's consumed-cycles ledger without touching any PCPU's busy
  // counter: the VM side of the conservation equation no longer matches.
  r.hv.vm(r.v1).total_online += sim::Cycles{12345};
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kCycleConservation), 1u);
  EXPECT_FALSE(r.auditor.report().clean());
}

TEST(Auditor, DetectsUnquantizedAttributionUnderSampledAccounting) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Stochastic/tick-sampled accounting attributes whole slots only; a
  // stray sub-slot remainder means someone charged outside the seam.
  r.hv.vm(r.v0).cycles_attributed += sim::Cycles{1};
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kCycleConservation), 1u);
}

TEST(Auditor, DetectsAttributionGapUnderExactAccounting) {
  Rig r;
  vmm::ResilienceConfig res;
  res.accounting = vmm::AccountingMode::kExact;
  r.hv.set_resilience(res);
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  EXPECT_EQ(violations(r.auditor, Invariant::kCycleConservation), 0u);
  // Exact accounting promises attributed == consumed per VM. Open a gap
  // on both sides of the VM ledger so the conservation sum stays intact
  // and only the per-VM attribution check can catch it.
  vmm::Vm& m = r.hv.vm(r.v0);
  m.cycles_attributed = sim::Cycles{m.total_online.v / 2};
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kCycleConservation), 1u);
}

TEST(Auditor, DetectsIllegalStateTransition) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Blocked -> Running without passing through a run queue is never legal.
  r.auditor.on_state_change(vmm::VcpuKey{r.v1, 0}, VcpuState::kBlocked,
                            VcpuState::kRunning);
  EXPECT_GE(violations(r.auditor, Invariant::kStateMachine), 1u);
}

TEST(Auditor, DetectsStateMutatedOutsideTransitionPaths) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Flip a state directly, bypassing the scheduler's transition seams: the
  // shadow state machine notices the divergence on the next full scan.
  Vcpu& c = r.hv.vm(r.v0).vcpus[0];
  c.state = c.state == VcpuState::kBlocked ? VcpuState::kRunnable
                                           : VcpuState::kBlocked;
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kStateMachine), 1u);
}

TEST(Auditor, DetectsGangIncoherence) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  r.hv.do_vcrd_op(r.v1, vmm::Vcrd::kHigh);  // relocates onto distinct PCPUs
  ASSERT_TRUE(r.hv.gang_scheduled(r.v1));
  r.auditor.check_now();
  EXPECT_EQ(violations(r.auditor, Invariant::kGangCoherence), 0u);
  // Co-locate two members of the gang. Prefer a queued member so the move
  // can keep queue and `where` in step (isolating the gang check from the
  // partition check); fall back to rewriting a running member's home.
  vmm::Vm& gang = r.hv.vm(r.v1);
  Vcpu* moved = nullptr;
  for (Vcpu& c : gang.vcpus)
    if (c.state == VcpuState::kRunnable) moved = &c;
  if (moved == nullptr) moved = &gang.vcpus[0];
  Vcpu* sibling = nullptr;
  for (Vcpu& c : gang.vcpus)
    if (&c != moved) sibling = &c;
  ASSERT_NE(sibling, nullptr);
  if (moved->state == VcpuState::kRunnable) {
    ASSERT_TRUE(r.hv.mutable_runqueue(moved->where).remove(moved));
    moved->where = sibling->where;
    r.hv.mutable_runqueue(moved->where).push(moved);
  } else {
    moved->where = sibling->where;
  }
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kGangCoherence), 1u);
}

TEST(Auditor, DetectsTopologyPlacementViolation) {
  // Paper topology rig: after a HIGH-VCRD relocation the gang packs into
  // one socket; teleporting a non-running member into the other socket is
  // exactly the spread the topology-placement invariant must flag.
  sim::Simulator sim;
  hw::MachineConfig m = small_machine(8);
  m.topology = hw::Topology::paper();
  core::AdaptiveScheduler hv(sim, m, vmm::SchedMode::kNonWorkConserving);
  hv.create_vm("Dom0", 256, 2);
  const VmId gang = hv.create_vm("Gang", 256, 4);
  Auditor auditor(sim, hv, {});
  hv.start();
  sim.run_until(seconds(0.1));
  // Block one member so relocation leaves a non-running record whose home
  // we can corrupt without involving run queues or the socket set the
  // running members pin.
  hv.vcpu_block(gang, 3);
  hv.do_vcrd_op(gang, vmm::Vcrd::kHigh);  // relocates; auditor checks here
  ASSERT_TRUE(hv.gang_scheduled(gang));
  EXPECT_GT(auditor.report().entry(Invariant::kTopologyPlacement).checks, 0u);
  EXPECT_EQ(violations(auditor, Invariant::kTopologyPlacement), 0u);
  Vcpu& blocked = hv.vm(gang).vcpus[3];
  ASSERT_EQ(blocked.state, VcpuState::kBlocked);
  const std::uint32_t home_socket = hv.topology().socket_of(blocked.where);
  const std::uint32_t other = home_socket == 0 ? 1 : 0;
  blocked.where = hv.topology().pcpus_in_socket(other).front();
  ASSERT_TRUE(hv.placement_spans_excess_sockets(gang));
  auditor.on_relocated(gang);
  EXPECT_GE(violations(auditor, Invariant::kTopologyPlacement), 1u);
  EXPECT_NE(auditor.report()
                .entry(Invariant::kTopologyPlacement)
                .first_offender.find("Gang"),
            std::string::npos);
}

TEST(Auditor, LifecycleChurnAuditsCleanAndExtendsTheShadow) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  // Hot lifecycle ops are legal scheduling events: destroy one boot VM,
  // create another, resize it — the shadow state machine follows along.
  ASSERT_TRUE(r.hv.destroy_vm(r.v1));
  const VmId hot = r.hv.create_vm("Hot", 256, 2);
  ASSERT_EQ(hot, 2u);
  r.sim.run_until(seconds(0.2));
  ASSERT_TRUE(r.hv.resize_vm(hot, 4));
  r.sim.run_until(seconds(0.3));
  ASSERT_TRUE(r.hv.resize_vm(hot, 1));
  r.sim.run_until(seconds(0.4));
  r.auditor.check_now();
  EXPECT_TRUE(r.auditor.report().clean()) << r.auditor.report().summary();
}

TEST(Auditor, DetectsTombstoneResurrectedIntoARunQueue) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  ASSERT_TRUE(r.hv.destroy_vm(r.v1));
  // Push a destroyed VCPU's record back onto a queue — the exact
  // use-after-destroy bug class the partition invariant now covers.
  Vcpu& ghost = r.hv.vm(r.v1).vcpus[0];
  ASSERT_EQ(ghost.state, VcpuState::kDestroyed);
  r.hv.mutable_runqueue(ghost.where).push(&ghost);
  r.auditor.check_now();
  EXPECT_GE(violations(r.auditor, Invariant::kQueuePartition), 1u);
  ASSERT_TRUE(r.hv.mutable_runqueue(ghost.where).remove(&ghost));
}

TEST(Auditor, DetectsIllegalTransitionOutOfDestroyed) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  ASSERT_TRUE(r.hv.destroy_vm(r.v1));
  // A tombstone is terminal; Running -> Destroyed is also never direct.
  r.auditor.on_state_change(vmm::VcpuKey{r.v1, 0}, VcpuState::kDestroyed,
                            VcpuState::kRunnable);
  r.auditor.on_state_change(vmm::VcpuKey{r.v1, 1}, VcpuState::kRunning,
                            VcpuState::kDestroyed);
  EXPECT_GE(violations(r.auditor, Invariant::kStateMachine), 2u);
}

TEST(Auditor, DetectsNonMonotonicTime) {
  Rig r;
  sim::Cycles fake{1000};
  bool first = true;
  r.auditor.set_clock([&first, &fake] {
    if (!first) fake = sim::Cycles{fake.v / 2};  // clock running backwards
    first = false;
    return fake;
  });
  r.auditor.on_sched_event(vmm::AuditPoint::kTick);
  r.auditor.on_sched_event(vmm::AuditPoint::kTick);
  EXPECT_GE(violations(r.auditor, Invariant::kTimeMonotonic), 1u);
}

TEST(Auditor, ReportSummaryNamesEveryInvariant) {
  Rig r;
  r.hv.start();
  r.sim.run_until(seconds(0.1));
  const std::string s = r.auditor.report().summary();
  for (std::size_t i = 0; i < kNumInvariants; ++i)
    EXPECT_NE(s.find(to_string(static_cast<Invariant>(i))), std::string::npos)
        << s;
}

TEST(Auditor, ScenarioRunnerAttachesAuditorOnRequest) {
  experiments::Scenario sc;
  sc.machine = small_machine(4);
  sc.scheduler = core::SchedulerKind::kAsman;
  experiments::VmSpec v0;
  v0.name = "V0";
  v0.weight = 256;
  v0.vcpus = 2;
  experiments::VmSpec v1;
  v1.name = "V1";
  v1.weight = 128;
  v1.vcpus = 2;
  sc.vms.push_back(v0);
  sc.vms.push_back(v1);
  sc.horizon = seconds(0.5);
  sc.audit = true;
  const experiments::RunResult rr = experiments::run_scenario(sc);
  EXPECT_GT(rr.audit_checks, 0u);
  EXPECT_EQ(rr.audit_violations, 0u);
  EXPECT_NE(rr.audit_summary.find("queue-partition"), std::string::npos);

  experiments::Scenario off = sc;
  off.audit = false;
  const experiments::RunResult rr_off = experiments::run_scenario(off);
  EXPECT_EQ(rr_off.audit_checks, 0u);
  EXPECT_TRUE(rr_off.audit_summary.empty());
}

// ------------------------- pressure-conservation seeded violations --------
// These live here, not in contention_test.cpp: that binary runs in the
// audited-fatal `contention` lane, where a deliberately planted violation
// would abort the process instead of being counted.

constexpr std::uint64_t kMiB = 1ull << 20;

hw::MachineConfig pressured_machine() {
  hw::MachineConfig m;
  m.num_pcpus = 8;
  m.topology = hw::Topology::paper();
  m.llc_bytes = 2 * kMiB;
  m.socket_mem_bw_bytes_per_s = 1'000'000'000ull;
  return m;
}

/// Two footprinted VMs on the pressured paper host, auditor attached.
/// Footprints overflow the 2 MiB LLCs, so every engine pass rations.
struct PressureRig {
  sim::Simulator sim;
  core::AdaptiveScheduler hv;
  VmId v0, v1;
  Auditor auditor;

  PressureRig()
      : hv(sim, pressured_machine(), vmm::SchedMode::kNonWorkConserving),
        v0(hv.create_vm("V0", 256, 2)),
        v1(hv.create_vm("V1", 128, 3)),
        auditor(sim, hv, {}) {
    hv.set_vm_footprint(v0, hw::memsys::make_footprint(
                                4 * kMiB, 2'000'000'000ull, 600));
    hv.set_vm_footprint(v1, hw::memsys::make_footprint(
                                6 * kMiB, 3'000'000'000ull, 300));
    hv.start();
  }
};

std::uint64_t conservation_violations(const Auditor& a) {
  return a.report().entry(Invariant::kPressureConservation).violations;
}

TEST(ContentionSeeded, CleanPressuredRigAuditsClean) {
  PressureRig r;
  r.sim.run_until(seconds(0.5));
  r.auditor.check_now();
  EXPECT_GT(r.hv.pressure_periods(), 0u);
  EXPECT_GT(r.hv.pressure_degraded_total(), 0u);
  EXPECT_GT(
      r.auditor.report().entry(Invariant::kPressureConservation).checks, 0u);
  EXPECT_EQ(conservation_violations(r.auditor), 0u)
      << r.auditor.report().summary();
}

TEST(ContentionSeeded, DetectsALedgerWriteOutsideTheSeam) {
  // The bug class the full-scan half exists for: someone adjusts a VM's
  // degraded total without going through apply_contention.
  PressureRig r;
  r.sim.run_until(seconds(0.3));
  r.hv.vm(r.v1).pressure_degraded += 12'345;
  r.auditor.check_now();
  EXPECT_GE(conservation_violations(r.auditor), 1u);
  EXPECT_NE(r.auditor.report()
                .entry(Invariant::kPressureConservation)
                .first_offender.find("V1"),
            std::string::npos)
      << r.auditor.report().summary();
}

TEST(ContentionSeeded, DetectsMachineTotalsDriftingFromTheVmSums) {
  PressureRig r;
  r.sim.run_until(seconds(0.3));
  // Corrupt both halves of one VM's split so the per-VM identity still
  // holds but the machine totals no longer match the sums.
  r.hv.vm(r.v0).pressure_degraded += 1'000;
  r.hv.vm(r.v0).pressure_effective -= 1'000;
  r.auditor.check_now();
  EXPECT_GE(conservation_violations(r.auditor), 1u);
}

TEST(ContentionSeeded, DetectsACorruptedOccupancyPartition) {
  // The event-scoped half: the published grant matrix stops being an
  // exact partition (here: one LLC's granted total inflated), caught at
  // the next contention hook.
  PressureRig r;
  r.sim.run_until(seconds(0.3));
  ASSERT_GT(r.hv.pressure_periods(), 0u);
  r.hv.mutable_pressure().llc_granted[0] += 64 * 1024;
  r.auditor.on_contention();
  EXPECT_GE(conservation_violations(r.auditor), 1u)
      << r.auditor.report().summary();
}

TEST(ContentionSeeded, DetectsAGrantExceedingDemand) {
  PressureRig r;
  r.sim.run_until(seconds(0.3));
  ASSERT_GT(r.hv.pressure_periods(), 0u);
  auto& pass = r.hv.mutable_pressure();
  pass.vm_llc_granted[r.v0][0] = pass.vm_llc_demand[r.v0][0] + 4096;
  r.auditor.on_contention();
  EXPECT_GE(conservation_violations(r.auditor), 1u);
}

using AuditorDeathTest = ::testing::Test;

TEST(AuditorDeathTest, FatalModeAbortsOnFirstViolation) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        AuditorConfig cfg;
        cfg.fatal = true;
        Rig r(cfg);
        r.hv.start();
        r.sim.run_until(seconds(0.05));
        r.hv.vm(r.v1).vcpus[0].credit = 10 * r.hv.credit_cap();
        r.auditor.check_now();
      },
      "ASMAN_AUDIT_FATAL: invariant credit-bounds violated");
}

}  // namespace
}  // namespace asman::audit

// Graceful-degradation chaos suite: every fault class from the fault model
// runs under all three schedulers with the invariant auditor attached, and
// the scheduler must (a) keep every invariant, (b) keep making progress to
// the horizon (no deadlock), and (c) degrade observably where the fault
// demands it (flapping guests demoted, stale VCRDs dropped, offlined PCPUs
// evacuated with credit preserved).
#include <gtest/gtest.h>

#include <string>

#include "core/schedulers.h"
#include "experiments/chaos.h"
#include "experiments/scenario.h"
#include "guest/guest_kernel.h"
#include "hw/ipi.h"
#include "simcore/simulator.h"

namespace asman::experiments {
namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }

// --- the chaos matrix: every fault class x every scheduler ------------------

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<core::SchedulerKind,
                                                 ChaosClass>> {};

TEST_P(ChaosMatrix, AuditedRunSurvivesToHorizonWithZeroViolations) {
  const auto [sched, cls] = GetParam();
  Scenario sc = chaos_scenario(sched, cls, 42);
  sc.audit = true;
  const RunResult rr = run_scenario(sc);
#ifdef ASMAN_AUDIT_ENABLED
  EXPECT_GT(rr.audit_checks, 0u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
#endif
  // No deadlock: the run reaches the horizon (the workloads are sized to
  // outlast it) and PCPUs were not idling the run away. Tick jitter can
  // leave the final event a hair short of the horizon, hence >= 99%.
  const double horizon_s = sim::kDefaultClock.to_seconds(sc.horizon);
  EXPECT_GE(rr.elapsed_seconds, 0.99 * horizon_s);
  EXPECT_LT(rr.idle_fraction, 0.9);
  EXPECT_GT(rr.context_switches, 0u);
}

std::string chaos_case_name(
    const ::testing::TestParamInfo<ChaosMatrix::ParamType>& pinfo) {
  std::string name = core::to_string(std::get<0>(pinfo.param));
  name += "_";
  name += to_string(std::get<1>(pinfo.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersAllFaults, ChaosMatrix,
    ::testing::Combine(::testing::Values(core::SchedulerKind::kCredit,
                                         core::SchedulerKind::kCon,
                                         core::SchedulerKind::kAsman),
                       ::testing::ValuesIn(all_chaos_classes())),
    chaos_case_name);

// --- degradation is observable, not silent ----------------------------------

TEST(Degradation, FlappingGuestIsDemotedToStockTreatment) {
  Scenario sc = chaos_scenario(core::SchedulerKind::kAsman,
                               ChaosClass::kVcrdFlap, 42);
  sc.audit = true;
  const RunResult rr = run_scenario(sc);
  EXPECT_GT(rr.injected_flaps, 0u);
  EXPECT_GE(rr.vcrd_demotions, 1u)
      << "a 500 Hz VCRD flapper must trip the rate limiter";
  EXPECT_GE(rr.vm("Gang").demotions, 1u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

TEST(Degradation, CorruptHypercallsAreRejectedWithoutStateDamage) {
  Scenario sc = chaos_scenario(core::SchedulerKind::kAsman,
                               ChaosClass::kVcrdCorrupt, 42);
  sc.audit = true;
  const RunResult rr = run_scenario(sc);
  EXPECT_EQ(rr.injected_corrupt_ops, 60u);
  EXPECT_EQ(rr.hypercall_rejects, 60u)
      << "every corrupt do_vcrd_op must bounce, none may assert or mutate";
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

TEST(Degradation, HotplugEvacuatesWithCreditPreserved) {
  Scenario sc = chaos_scenario(core::SchedulerKind::kAsman,
                               ChaosClass::kHotplug, 42);
  sc.audit = true;  // credit conservation is one of the audited invariants
  const RunResult rr = run_scenario(sc);
  EXPECT_EQ(rr.pcpu_offline_events, 2u);
  EXPECT_GE(rr.evacuated_vcpus, 1u)
      << "8 VCPUs on 4 PCPUs: an offlined PCPU cannot have an empty queue";
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

TEST(Degradation, StaleVcrdIsDroppedByTtl) {
  // Unit-level TTL check, independent of whether the chaos workload
  // happens to be HIGH when the monitor goes silent: force HIGH once,
  // never report again, and let accounting passes apply the TTL.
  sim::Simulator s;
  hw::MachineConfig m;
  m.num_pcpus = 2;
  core::AdaptiveScheduler hv(s, m, vmm::SchedMode::kNonWorkConserving);
  vmm::ResilienceConfig rc;
  rc.vcrd_ttl = ms(90);
  hv.set_resilience(rc);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  hv.start();
  hv.do_vcrd_op(id, vmm::Vcrd::kHigh);
  ASSERT_EQ(hv.vm(id).vcrd, vmm::Vcrd::kHigh);
  s.run_until(ms(200));  // several accounting passes beyond the TTL
  EXPECT_EQ(hv.vm(id).vcrd, vmm::Vcrd::kLow);
  EXPECT_EQ(hv.stale_vcrd_drops(), 1u);
}

TEST(Degradation, DemotionLiftsAfterBackoff) {
  sim::Simulator s;
  hw::MachineConfig m;
  m.num_pcpus = 2;
  core::AdaptiveScheduler hv(s, m, vmm::SchedMode::kNonWorkConserving);
  vmm::ResilienceConfig rc;
  rc.flap_limit = 4;
  rc.flap_window = ms(50);
  rc.demote_backoff = ms(60);
  hv.set_resilience(rc);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  hv.start();
  // Flap well past the limit inside one window.
  for (int i = 0; i < 8; ++i) {
    hv.do_vcrd_op(id, vmm::Vcrd::kHigh);
    hv.do_vcrd_op(id, vmm::Vcrd::kLow);
  }
  s.run_until(ms(10));
  EXPECT_TRUE(hv.vm_degraded(id));
  EXPECT_FALSE(hv.gang_scheduled(id)) << "degraded VMs get stock treatment";
  EXPECT_GE(hv.vcrd_demotions(), 1u);
  // Quiet guest: the demotion lifts at the first accounting pass past the
  // backoff.
  s.run_until(ms(150));
  EXPECT_FALSE(hv.vm_degraded(id));
}

TEST(Degradation, LastOnlinePcpuCannotBeOfflined) {
  sim::Simulator s;
  hw::MachineConfig m;
  m.num_pcpus = 2;
  core::AdaptiveScheduler hv(s, m, vmm::SchedMode::kNonWorkConserving);
  hv.create_vm("V0", 256, 2);
  hv.start();
  s.run_until(ms(5));
  hv.fault_pcpu_offline(0);
  EXPECT_FALSE(hv.pcpu_is_online(0));
  EXPECT_EQ(hv.online_pcpus(), 1u);
  hv.fault_pcpu_offline(1);  // refused: last one standing
  EXPECT_TRUE(hv.pcpu_is_online(1));
  EXPECT_EQ(hv.online_pcpus(), 1u);
  EXPECT_EQ(hv.pcpu_offline_events(), 1u);
  hv.fault_pcpu_online(0);
  EXPECT_EQ(hv.online_pcpus(), 2u);
  s.run_until(ms(20));
}

TEST(Degradation, LossyBusArmsRetriesAndGangStartsRecover) {
  // Drop-everything plan on a strict CON gang: the retry path and the
  // co-stop watchdog must keep the system live (and counted), never
  // deadlocked waiting on IPIs that will not arrive.
  Scenario sc = chaos_scenario(core::SchedulerKind::kCon,
                               ChaosClass::kIpiLoss, 42);
  sc.audit = true;
  sc.faults.ipi.drop_p = 1.0;  // nothing ever arrives
  sc.faults.ipi.dup_p = 0.0;
  sc.faults.ipi.delay_p = 0.0;
  const RunResult rr = run_scenario(sc);
  EXPECT_GT(rr.ipi_dropped, 0u);
  EXPECT_GT(rr.ipi_retries, 0u) << "lossy bus must arm the retry machinery";
  EXPECT_GT(rr.gang_ipi_aborts, 0u)
      << "with 100% loss every launch must eventually abandon the slot";
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
  EXPECT_DOUBLE_EQ(rr.elapsed_seconds,
                   sim::kDefaultClock.to_seconds(sc.horizon));
}

TEST(Degradation, CrashedVcpuDoesNotStallItsGang) {
  Scenario sc = chaos_scenario(core::SchedulerKind::kCon,
                               ChaosClass::kVcpuCrash, 42);
  sc.audit = true;
  const RunResult rr = run_scenario(sc);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
  // The remaining members keep running: the Gang VM still accumulates
  // online time after the crash at 400 ms.
  EXPECT_GT(rr.vm("Gang").observed_online_rate, 0.0);
  EXPECT_DOUBLE_EQ(rr.elapsed_seconds,
                   sim::kDefaultClock.to_seconds(sc.horizon));
}

}  // namespace
}  // namespace asman::experiments

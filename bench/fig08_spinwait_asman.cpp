// Figure 8: detailed spinlock waiting times under ASMan (compare Fig 2).
//
// Same setup as fig02 but with the Adaptive Scheduler + Monitoring Module.
// Expected shape: the over-threshold tail largely disappears — a few
// residual spikes remain (the first over-threshold wait of each locality,
// which is what *triggers* coscheduling), but far fewer than under Credit.
#include "bench_util.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman};

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    for (const ex::RatePoint& rp : ex::kRatePoints) {
      ex::Scenario sc = ex::single_vm_scenario(
          k, rp.weight, ex::npb_factory(workloads::NpbBenchmark::kLU));
      sc.keep_wait_samples = true;
      s.add(rate_label(k, rp.rate), std::move(sc));
    }
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["gt_2e20"] =
      static_cast<double>(v1.stats.spin_waits.count_above(20));
  st.counters["max_log2"] =
      static_cast<double>(sim::log2_floor(v1.stats.spin_waits.max_value()));
  st.counters["adjusting_events"] =
      static_cast<double>(v1.adjusting_events);
}

void print_tables(const Sweep& s) {
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const ex::VmResult& a =
        s.get(rate_label(core::SchedulerKind::kAsman, rp.rate)).run.vm("V1");
    std::printf(
        "\n== Figure 8: spinlock wait distribution, ASMan @ %s online rate "
        "(waits > 2^10: %llu, max 2^%u, adjusting events: %llu) ==\n%s",
        ex::fmt_pct(rp.rate).c_str(),
        static_cast<unsigned long long>(a.stats.spin_waits.count_above(10)),
        sim::log2_floor(a.stats.spin_waits.max_value()),
        static_cast<unsigned long long>(a.adjusting_events),
        a.stats.spin_waits.render(10, 28).c_str());
  }
  std::printf(
      "\n== Over-threshold (>2^20) wait counts: Credit vs ASMan ==\n");
  ex::TextTable t({"online rate", "Credit", "ASMan", "reduction"});
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const auto cc =
        s.get(rate_label(core::SchedulerKind::kCredit, rp.rate))
            .run.vm("V1")
            .stats.spin_waits.count_above(20);
    const auto aa = s.get(rate_label(core::SchedulerKind::kAsman, rp.rate))
                        .run.vm("V1")
                        .stats.spin_waits.count_above(20);
    t.add_row({ex::fmt_pct(rp.rate), std::to_string(cc), std::to_string(aa),
               cc > 0 ? ex::fmt_pct(1.0 - static_cast<double>(aa) /
                                              static_cast<double>(cc))
                      : std::string("-")});
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig08", annotate, print_tables);
}

// Adversarial-tenancy scenarios: canned attack runs for tests, the bench
// and demos (docs/MODEL.md "Threat model & fairness guarantees").
//
// The host mirrors the chaos-base layout (VM 1 is the gang candidate) so
// apply_chaos() composes unchanged, and adds a victim tenant plus one
// attacker VM driven by a workloads::AdversaryModel. Scenarios come in
// three hardening levels:
//
//   unhardened  tick-sampled accounting, no BOOST limiter, no VCRD
//               plausibility check — the faithful-vulnerable scheduler
//               from arXiv 1103.0759;
//   mitigated   still tick-sampled, but sampling instants carry seeded
//               random offsets (the paper's Bernoulli-style fix);
//   hardened    exact (tickless) accounting + BOOST rate limiter + VCRD
//               plausibility clamp — attacks bound to epsilon of fair
//               share.
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/chaos.h"
#include "experiments/scenario.h"
#include "workloads/adversary.h"

namespace asman::experiments {

/// Fairness tolerance: a hardened run must hold every adversary within
/// this much of its weighted fair share of PCPU time.
inline constexpr double kFairnessEpsilon = 0.05;

/// Nominal per-VCPU online rate of the attacker VM in the adversary host
/// (weight 256 of 1024 total, 4 PCPUs capped, 4 VCPUs -> 0.25).
inline constexpr double kAttackerFairShare = 0.25;

/// Turn on the full defense stack: exact accounting, BOOST rate limiter,
/// VCRD plausibility clamp (windows resolve to their slot-derived
/// defaults at hypervisor start).
void apply_hardening(Scenario& sc);

/// The middle ground: keep tick-sampled accounting but randomize every
/// sampling instant's offset within the slot (seeded, bit-reproducible).
void apply_mitigated_sampling(Scenario& sc);

/// One attacker VM against a consolidated host: idle Dom0, an honest
/// NPB/LU gang candidate (VM 1, emits the yield stream that legitimizes
/// its VCRD), a CPU-bound victim, and the attacker. Capped
/// (non-work-conserving) mode so "fair share" is well defined. With
/// hardened=false the run uses tick-sampled accounting and no defenses.
Scenario adversary_scenario(core::SchedulerKind sched,
                            workloads::AttackKind attack, bool hardened,
                            std::uint64_t seed = 1);

/// Adversary host composed with one chaos fault class and a small churn
/// schedule (hot create/destroy/resize mid-attack) — the soak harness's
/// worst case. Bit-reproducible per (sched, attack, class, seed).
Scenario adversary_churn_chaos_scenario(core::SchedulerKind sched,
                                        workloads::AttackKind attack,
                                        ChaosClass c, std::uint64_t seed = 1);

/// All attack kinds, for sweep loops (mirrors all_chaos_classes()).
const std::vector<workloads::AttackKind>& all_attack_kinds();

}  // namespace asman::experiments

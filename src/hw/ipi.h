// Inter-processor interrupt delivery.
//
// The Adaptive Scheduler coschedules a VM's VCPUs by sending IPIs from the
// PCPU that scheduled the head VCPU to the PCPUs holding its siblings
// (Algorithm 4). The bus models delivery latency and invokes a per-PCPU
// handler in the target's context; it also counts traffic so benches can
// report coscheduling overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/machine.h"
#include "simcore/simulator.h"

namespace asman::hw {

class IpiBus {
 public:
  /// Handler invoked on the target PCPU when an IPI arrives. `vector`
  /// identifies the purpose (the scheduler uses one vector per cause).
  using Handler = std::function<void(PcpuId target, std::uint32_t vector)>;

  IpiBus(sim::Simulator& simr, const MachineConfig& cfg)
      : sim_(simr), latency_(cfg.ipi_latency()), handlers_(cfg.num_pcpus) {}

  void set_handler(PcpuId pcpu, Handler h) { handlers_[pcpu] = std::move(h); }

  /// Send an IPI; the target handler runs after the bus latency.
  void send(PcpuId from, PcpuId to, std::uint32_t vector) {
    (void)from;
    ++sent_;
    sim_.after(latency_, [this, to, vector] {
      ++delivered_;
      if (handlers_[to]) handlers_[to](to, vector);
    });
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  sim::Simulator& sim_;
  Cycles latency_;
  std::vector<Handler> handlers_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
};

}  // namespace asman::hw

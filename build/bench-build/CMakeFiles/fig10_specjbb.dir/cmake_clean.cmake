file(REMOVE_RECURSE
  "../bench/fig10_specjbb"
  "../bench/fig10_specjbb.pdb"
  "CMakeFiles/fig10_specjbb.dir/fig10_specjbb.cpp.o"
  "CMakeFiles/fig10_specjbb.dir/fig10_specjbb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_specjbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

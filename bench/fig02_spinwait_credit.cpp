// Figure 2: detailed spinlock waiting times under the Credit scheduler.
//
// LU in VM V1 at online rates 100/66.7/40/22.2 %; for each rate the full
// per-acquisition wait distribution is printed (the paper plots them as
// per-spinlock scatter; we print the log2 histogram and dump the raw
// samples to CSV for re-plotting). Expected shape: at 100 % everything is
// below ~2^13; as the rate drops, a heavy tail above 2^20 appears (lock-
// holder preemption) and clusters (locality of synchronization).
#include "bench_util.h"

using namespace asman;
using namespace asman::bench;

namespace {

Sweep build_sweep() {
  Sweep s;
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    ex::Scenario sc = ex::single_vm_scenario(
        core::SchedulerKind::kCredit, rp.weight,
        ex::npb_factory(workloads::NpbBenchmark::kLU));
    sc.keep_wait_samples = true;
    s.add(rate_label(core::SchedulerKind::kCredit, rp.rate), std::move(sc));
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["spin_total"] =
      static_cast<double>(v1.stats.spin_waits.total());
  st.counters["gt_2e15"] =
      static_cast<double>(v1.stats.spin_waits.count_above(15));
  st.counters["gt_2e20"] =
      static_cast<double>(v1.stats.spin_waits.count_above(20));
  st.counters["gt_2e25"] =
      static_cast<double>(v1.stats.spin_waits.count_above(25));
  st.counters["max_log2"] =
      static_cast<double>(sim::log2_floor(v1.stats.spin_waits.max_value()));
}

void print_tables(const Sweep& s) {
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const auto& pr = s.get(rate_label(core::SchedulerKind::kCredit, rp.rate));
    const ex::VmResult& v1 = pr.run.vm("V1");
    std::printf(
        "\n== Figure 2: spinlock wait distribution, Credit @ %s online "
        "rate (waits > 2^10: %llu, max 2^%u) ==\n%s",
        ex::fmt_pct(rp.rate).c_str(),
        static_cast<unsigned long long>(v1.stats.spin_waits.count_above(10)),
        sim::log2_floor(v1.stats.spin_waits.max_value()),
        v1.stats.spin_waits.render(10, 28).c_str());
    // Raw samples (>= 2^10) for scatter-style re-plotting.
    std::vector<std::vector<std::string>> rows;
    std::uint64_t idx = 0;
    for (sim::Cycles c : v1.stats.spin_waits.samples()) {
      if (c < sim::pow2_cycles(10)) continue;
      rows.push_back({std::to_string(idx++), std::to_string(c.v)});
    }
    char path[64];
    std::snprintf(path, sizeof path, "fig02_credit_rate%.0f.csv",
                  rp.rate * 100.0);
    ex::write_csv(path, {"index", "wait_cycles"}, rows);
    std::printf("  (%zu samples >= 2^10 written to %s)\n", rows.size(), path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig02", annotate, print_tables);
}

#include "experiments/runner.h"

#include "simcore/rng.h"
#include "simcore/thread_pool.h"

namespace asman::experiments {

std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 std::size_t threads) {
  std::vector<RunResult> results(points.size());
  sim::ThreadPool pool(threads);
  pool.parallel_for(points.size(), [&points, &results](std::size_t i) {
    results[i] = run_scenario(points[i].scenario);
  });
  return results;
}

sim::Summary run_repeated(const Scenario& base, std::size_t reps,
                          const std::function<double(const RunResult&)>& metric,
                          std::size_t threads) {
  std::vector<double> values(reps);
  sim::ThreadPool pool(threads);
  sim::SplitMix64 seeds(base.seed ^ 0xC0FFEEULL);
  std::vector<std::uint64_t> rep_seeds(reps);
  for (auto& s : rep_seeds) s = seeds.next();
  pool.parallel_for(reps, [&base, &metric, &values, &rep_seeds](std::size_t i) {
    Scenario sc = base;
    sc.seed = rep_seeds[i];
    values[i] = metric(run_scenario(sc));
  });
  sim::Summary s;
  for (double v : values) s.add(v);
  return s;
}

}  // namespace asman::experiments

#include "report.h"

#include <algorithm>
#include <cstdio>

namespace asman_lint {

void apply_allows(const FileUnit& unit, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.file != unit.display_path) continue;
    for (const AllowPragma& p : unit.allows) {
      if (p.line != f.line && p.line != f.line - 1) continue;
      const bool covers =
          std::any_of(p.checks.begin(), p.checks.end(),
                      [&f](const std::string& c) {
                        return c == f.check || c == "all";
                      });
      if (!covers) continue;
      f.allowed = true;
      f.allow_reason = p.reason;
      ++p.uses;
      break;
    }
  }
}

ReportStats print_report(const std::vector<Finding>& findings,
                         const Options& options) {
  ReportStats stats;
  for (const Finding& f : findings) {
    if (f.allowed) {
      ++stats.suppressed;
      continue;
    }
    ++stats.errors;
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.check.c_str(), f.message.c_str());
    // The path witness: how control flow reaches the violation.
    for (const TraceStep& s : f.trace)
      std::fprintf(stderr, "    path: line %d: %s\n", s.line, s.note.c_str());
  }
  // The suppression ledger is always printed (even under -q): allows are
  // meant to be visible in CI output, that is the point of the budget.
  for (const Finding& f : findings) {
    if (!f.allowed) continue;
    std::fprintf(stderr, "%s:%d: [%s] suppressed by allow(%s)%s%s\n",
                 f.file.c_str(), f.line, f.check.c_str(), f.check.c_str(),
                 f.allow_reason.empty() ? "" : " -- ",
                 f.allow_reason.c_str());
  }
  if (!options.quiet || stats.errors > 0 || stats.suppressed > 0) {
    std::fprintf(stderr,
                 "asman-lint: %d error(s), %d suppression(s) "
                 "(budget %d)\n",
                 stats.errors, stats.suppressed, options.max_allows);
  }
  if (stats.suppressed > options.max_allows) {
    std::fprintf(stderr,
                 "asman-lint: suppression budget exceeded (%d > %d); prune "
                 "allows or raise --max-allows deliberately\n",
                 stats.suppressed, options.max_allows);
  }
  return stats;
}

bool check_enabled(const Options& opt, const char* name) {
  if (opt.only_checks.empty()) return true;
  return std::find(opt.only_checks.begin(), opt.only_checks.end(), name) !=
         opt.only_checks.end();
}

bool under_any_prefix(const std::string& display, const Options& opt) {
  if (opt.prefixes.empty()) return true;
  for (const std::string& p : opt.prefixes)
    if (display.compare(0, p.size(), p) == 0) return true;
  return false;
}

}  // namespace asman_lint

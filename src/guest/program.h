// Workload-to-guest interface: programs as pull-based operation streams.
//
// A guest thread executes a `ThreadProgram`, which hands the kernel one
// operation at a time: compute for N cycles, enter a critical section,
// arrive at a barrier, wait/post a semaphore, or finish. The guest kernel
// translates the synchronization ops into the user-level (libgomp-style
// spin-then-block) and kernel-level (futex + spinlock) machinery whose
// behaviour under virtualization the paper studies. Workload models
// (src/workloads) are just ThreadProgram factories.
#pragma once

#include <cstdint>
#include <memory>

#include "simcore/time.h"

namespace asman::guest {

/// Guest-local thread id (dense per VM; also used for IRQ pseudo-threads).
using Tid = std::uint32_t;
inline constexpr Tid kNoTid = static_cast<Tid>(-1);

struct Op {
  enum class Kind : std::uint8_t {
    /// Pure computation for `len` cycles.
    kCompute,
    /// Acquire user mutex `obj` (futex-backed), compute `len` cycles inside
    /// the critical section, release.
    kCritical,
    /// Arrive at barrier `obj` and wait for all parties (spin-then-block).
    kBarrier,
    /// Down semaphore `obj` (blocks when zero — never spins).
    kSemWait,
    /// Up semaphore `obj`.
    kSemPost,
    /// Timed sleep for `len` cycles of wall time (nanosleep/timer wait):
    /// the thread blocks and is woken by the guest timer.
    kSleep,
    /// Thread finished; the kernel retires it.
    kDone,
  };

  Kind kind{Kind::kDone};
  sim::Cycles len{};     // kCompute duration / kCritical hold time
  std::uint32_t obj{0};  // mutex / barrier / semaphore index

  static Op compute(sim::Cycles len) { return {Kind::kCompute, len, 0}; }
  static Op critical(std::uint32_t mtx, sim::Cycles hold) {
    return {Kind::kCritical, hold, mtx};
  }
  static Op barrier(std::uint32_t bar) { return {Kind::kBarrier, {}, bar}; }
  static Op sem_wait(std::uint32_t s) { return {Kind::kSemWait, {}, s}; }
  static Op sem_post(std::uint32_t s) { return {Kind::kSemPost, {}, s}; }
  static Op sleep(sim::Cycles len) { return {Kind::kSleep, len, 0}; }
  static Op done() { return {Kind::kDone, {}, 0}; }
};

/// One guest thread's instruction stream. Implementations own their RNG
/// state and may consult shared workload state; next() must be cheap.
class ThreadProgram {
 public:
  virtual ~ThreadProgram() = default;
  virtual Op next() = 0;
  virtual const char* name() const = 0;
};

}  // namespace asman::guest

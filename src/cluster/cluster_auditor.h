// Cluster-wide invariant auditor.
//
// The per-host audit::Auditor verifies each hypervisor in isolation; this
// class owns the two properties only the fabric can see
// (audit/invariants.h):
//
//   * kSingleOwnership — at every cluster event, each admitted VM is
//     resident (a live local VM of its unique name) on exactly one host —
//     zero for lost/retired VMs — including mid-migration, because
//     migrate_out retires the source copy before migrate_in creates the
//     destination copy,
//   * kClusterCreditConservation — every credit transfer is exact: the
//     ticket equals the pool independently summed at capture, and
//     seeded + residual equals the ticket. Summed over per-host pools
//     plus the fabric's residual ledger, migration neither mints nor
//     loses credit.
//
// Violations accumulate in a standard audit::AuditReport (the cluster rows
// of the shared invariant catalog); under fatal (or ASMAN_AUDIT_FATAL) the
// first violation prints the report and aborts. The whole class is only
// built when the audit subsystem is (-DASMAN_AUDIT=ON).
#pragma once

#ifdef ASMAN_AUDIT_ENABLED

#include <string>

#include "audit/report.h"
#include "simcore/time.h"

namespace asman::cluster {

class Cluster;

class ClusterAuditor {
 public:
  ClusterAuditor(const Cluster& cluster, bool fatal);

  const audit::AuditReport& report() const { return report_; }

  /// Full ownership scan over every admitted VM x every host. Called at
  /// heartbeats, transfers and crash recoveries.
  void on_event();

  /// One transfer seam fired (commit, rollback re-admit, crash re-admit):
  /// `expected` is the pool independently summed at capture, `ticket` what
  /// the migration actually carried, `seeded` what the destination
  /// reported, `residual` what the fabric ledgered.
  void on_transfer(const char* what, __int128 expected, __int128 ticket,
                   __int128 seeded, __int128 residual);

 private:
  void flag(audit::Invariant inv, std::string what);

  const Cluster& cluster_;
  bool fatal_;
  audit::AuditReport report_;
};

}  // namespace asman::cluster

#endif  // ASMAN_AUDIT_ENABLED

// Deterministic fault injector: executes a FaultPlan against one run.
//
// The injector is the single owner of all injection state. It plugs into
// the seams the substrate exposes — hw::IpiFaultPlan on the bus,
// vmm::FaultHook for tick jitter, the hypervisor's fault_* entry points
// for hotplug and crashes — and interposes thin port wrappers for the
// guest-layer faults (silenced VCRD reports, hung VCPUs). Everything it
// does is driven off the simulator event queue from its own seeded RNG
// streams, so a run with a given (scenario seed, fault plan) pair is
// bit-reproducible.
//
// Wiring order inside run_scenario():
//   1. construct the injector (after the hypervisor),
//   2. route each VM's hypercalls through hypercall_port(id) and its
//      GuestPort through wrap_guest(id, ...),
//   3. arm() once all VMs exist, before Hypervisor::start().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_plan.h"
#include "hw/ipi.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "vmm/fault_hook.h"
#include "vmm/hypervisor.h"
#include "vmm/ports.h"

namespace asman::faults {

class FaultInjector final : public hw::IpiFaultPlan, public vmm::FaultHook {
 public:
  FaultInjector(sim::Simulator& simulation, vmm::Hypervisor& hv,
                FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The hypercall port VM `id`'s guest-side components (guest kernel,
  /// Monitoring Module) must use instead of the hypervisor. Returns the
  /// hypervisor itself unless the plan silences this VM's VCRD reports.
  vmm::HypervisorPort& hypercall_port(VmId id);

  /// Wrap VM `id`'s GuestPort for hang injection; pass the result to
  /// Hypervisor::attach_guest. Returns `inner` unchanged when the plan
  /// holds no hang fault for this VM.
  vmm::GuestPort* wrap_guest(VmId id, vmm::GuestPort* inner);

  /// Install the bus/tick seams and schedule every timed fault of the
  /// plan. Call exactly once, before Hypervisor::start().
  void arm();

  // --- hw::IpiFaultPlan ---
  hw::IpiDecision on_send(PcpuId from, PcpuId to,
                          std::uint32_t vector) override;

  // --- vmm::FaultHook ---
  Cycles tick_jitter(PcpuId p) override;

  // --- injection statistics (RunResult surface) ---
  std::uint64_t injected_flaps() const { return flaps_; }
  std::uint64_t injected_corrupt_ops() const { return corrupt_; }
  std::uint64_t silenced_reports() const { return silenced_; }
  std::uint64_t hang_faults() const { return hangs_; }
  std::uint64_t crash_faults() const { return crashes_; }
  std::uint64_t hotplug_faults() const { return hotplugs_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  /// HypervisorPort interposer: swallows do_vcrd_op once silenced, passes
  /// every other hypercall through.
  class SilencePort final : public vmm::HypervisorPort {
   public:
    SilencePort(FaultInjector& owner, vmm::HypervisorPort& inner)
        : owner_(owner), inner_(inner) {}
    void do_vcrd_op(VmId vm, vmm::Vcrd vcrd) override;
    void vcpu_block(VmId vm, std::uint32_t vidx) override {
      inner_.vcpu_block(vm, vidx);
    }
    void vcpu_kick(VmId vm, std::uint32_t vidx) override {
      inner_.vcpu_kick(vm, vidx);
    }
    void vcpu_yield_hint(VmId vm, std::uint32_t vidx) override {
      inner_.vcpu_yield_hint(vm, vidx);
    }

    bool silenced{false};

   private:
    FaultInjector& owner_;
    vmm::HypervisorPort& inner_;
  };

  /// GuestPort interposer: once a VCPU is hung the guest stops receiving
  /// its online/offline callbacks — guest-side progress on it freezes and
  /// the VCPU never blocks, so VMM-side it runs (and burns credit) until
  /// preempted, forever. A synthetic final offline keeps the inner guest's
  /// own bookkeeping consistent.
  class HangPort final : public vmm::GuestPort {
   public:
    explicit HangPort(vmm::GuestPort* inner, std::uint32_t n_vcpus)
        : inner_(inner), hung_(n_vcpus, false), guest_online_(n_vcpus, false) {}
    void vcpu_online(std::uint32_t vidx) override;
    void vcpu_offline(std::uint32_t vidx) override;
    /// Mark `vidx` hung (delivering the synthetic offline if needed).
    void hang(std::uint32_t vidx);

   private:
    vmm::GuestPort* inner_;
    std::vector<bool> hung_;
    std::vector<bool> guest_online_;  // online as believed by inner_
  };

  void arm_vcrd(const VcrdFaultSpec& spec);
  void flap_step(VmId vm, std::uint32_t left);
  void corrupt_step(VmId vm, std::uint32_t left);

  sim::Simulator& sim_;
  vmm::Hypervisor& hv_;
  FaultPlan plan_;
  sim::Rng rng_ipi_;
  sim::Rng rng_tick_;

  struct VmPorts {
    VmId vm{0};
    std::unique_ptr<SilencePort> silence;
    std::unique_ptr<HangPort> hang;
  };
  std::vector<VmPorts> ports_;
  VmPorts& ports_for(VmId id);

  bool armed_{false};
  std::uint64_t flaps_{0};
  std::uint64_t corrupt_{0};
  std::uint64_t silenced_{0};
  std::uint64_t hangs_{0};
  std::uint64_t crashes_{0};
  std::uint64_t hotplugs_{0};
};

}  // namespace asman::faults

#include "simcore/time.h"

#include <cstdio>

namespace asman::sim {

std::string format_cycles(Cycles c) {
  char buf[64];
  const double s = kDefaultClock.to_seconds(c);
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluc",
                  static_cast<unsigned long long>(c.v));
  }
  return buf;
}

}  // namespace asman::sim

// Topology scenarios: the paper's dual-socket host for placement studies.
//
// topology_scenario() is the chaos-base fleet transplanted onto the
// paper's 2-socket x 2-LLC x 2-PCPU machine (dual Harpertown: each
// package is two dual-core dies sharing an L2). The `aware` knob selects
// topology-aware placement or the topology-blind baseline; both pay the
// same migration cost model, so bench_topology compares the two at equal
// cost and attributes any cross-socket delta to placement alone.
#pragma once

#include <cstdint>

#include "experiments/scenario.h"

namespace asman::experiments {

/// The consolidated dual-socket host: idle Dom0, the 4-VCPU gang
/// candidate as VM 1, and background hogs, on hw::Topology::paper()
/// (8 PCPUs). `n_vms` as in chaos_scenario (minimum 3; extras are 1-VCPU
/// hogs). `aware` false keeps the cost model but places like the flat
/// scheduler.
Scenario topology_scenario(core::SchedulerKind sched, std::uint64_t seed = 1,
                           bool aware = true, std::uint32_t n_vms = 4);

}  // namespace asman::experiments

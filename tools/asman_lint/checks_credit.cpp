// integer-credit: credit accounting is exact __int128 fixed-point
// (kCreditPerSlot units). Floating point introduces rounding that the
// conservation auditor cannot reconcile, and unwidened int64 products of
// credit-scale quantities can overflow under adversarial configurations
// (num_pcpus * kCreditPerSlot * slots_per_accounting exceeds int64 well
// inside the valid config space) — exactly the accounting imprecision
// schedulers get exploited through.
#include <string>
#include <unordered_set>
#include <vector>

#include "analyzer.h"

namespace asman_lint {

namespace {

bool credit_ident(const std::string& s) {
  return s == "kCreditPerSlot" || s.find("credit") != std::string::npos ||
         s.find("Credit") != std::string::npos;
}

// The pressure ledger (PR-9) is integer fixed-point exactly like credit:
// slowdown math is parts-per-million over __int128 and the conservation
// invariant re-adds the split, so floating point reaching one of these
// stores is the same exactness bug as it is for credit. (Only the store
// pattern uses this — harvest code legitimately casts the totals to
// double for reporting.)
bool pressure_ident(const std::string& s) {
  return s == "pressure_accounted" || s == "pressure_degraded" ||
         s == "pressure_effective" || s == "pressure_mark";
}

bool is_assign_op(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == "=" || t.text == "+=" || t.text == "-=" ||
          t.text == "*=" || t.text == "/=" || t.text == "%=");
}

// Integer types narrower than the credit domain. `Credit`, int64/uint64,
// `long long`, and `__int128` are fine; everything below loses range, and
// float/double lose exactness.
bool narrow_type(const std::vector<Token>& t, std::size_t b, std::size_t e) {
  static const std::unordered_set<std::string> narrow{
      "int",      "short",    "unsigned", "int8_t",  "int16_t", "int32_t",
      "uint8_t",  "uint16_t", "uint32_t", "char",    "float",   "double"};
  bool saw_long = false;
  int longs = 0;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "long") {
      saw_long = true;
      ++longs;
      continue;
    }
    if (s == "int64_t" || s == "uint64_t" || s == "Credit" ||
        s == "__int128" || s == "intmax_t" || s == "uintmax_t" ||
        s == "size_t" || s == "ptrdiff_t" || s == "Cycles")
      return false;
    if (narrow.count(s) != 0 && !(s == "int" && saw_long)) return true;
  }
  return saw_long && longs == 1;  // bare `long`: 32-bit on LLP64 targets
}

bool stmt_has(const std::vector<Token>& t, StmtRange r, const char* punct) {
  for (std::size_t i = r.begin; i < r.end; ++i)
    if (t[i].kind == Tok::kPunct && t[i].text == punct) return true;
  return false;
}

bool stmt_has_ident(const std::vector<Token>& t, StmtRange r,
                    const char* ident) {
  for (std::size_t i = r.begin; i < r.end; ++i)
    if (t[i].kind == Tok::kIdent && t[i].text == ident) return true;
  return false;
}

}  // namespace

void check_integer_credit(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;
  std::size_t last_multiply_stmt = static_cast<std::size_t>(-1);

  for (std::size_t i = 0; i < t.size(); ++i) {
    // (1) Credit-scale multiply without __int128 widening. Keyed on
    // kCreditPerSlot: any product involving the unit constant is at credit
    // scale by construction and must widen before multiplying.
    if (t[i].kind == Tok::kIdent && t[i].text == "kCreditPerSlot") {
      const StmtRange r = statement_around(t, i);
      if (r.begin != last_multiply_stmt && stmt_has(t, r, "*") &&
          !stmt_has_ident(t, r, "__int128")) {
        last_multiply_stmt = r.begin;
        ctx.report(t[i].line, "integer-credit",
                   "credit-scale multiply without __int128 widening can "
                   "overflow int64 inside the valid config space; widen "
                   "with static_cast<__int128> before multiplying");
      }
      continue;
    }

    // (2) Floating point reaching a credit store: `<x>.credit <op>= ...`
    // (or any credit-named lvalue, or a pressure-ledger leg) with a float
    // literal or float/double type in the statement.
    if (t[i].kind == Tok::kIdent &&
        (credit_ident(t[i].text) || pressure_ident(t[i].text)) &&
        i + 1 < t.size() && is_assign_op(t[i + 1])) {
      const StmtRange r = statement_around(t, i);
      bool fp = false;
      for (std::size_t j = i + 2; j < r.end && !fp; ++j)
        fp = t[j].kind == Tok::kFloatNumber ||
             (t[j].kind == Tok::kIdent &&
              (t[j].text == "float" || t[j].text == "double"));
      if (fp)
        ctx.report(t[i].line, "integer-credit",
                   "floating point reaching credit store '" + t[i].text +
                       "'; credit is exact integer fixed-point and must "
                       "stay __int128/int64");
      continue;
    }

    // (3) Narrowing cast of a credit quantity: static_cast<int>(v.credit).
    if (t[i].kind == Tok::kIdent && t[i].text == "static_cast" &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "<") {
      const std::size_t tclose = match_forward(t, i + 1);
      if (tclose >= t.size()) continue;
      if (!narrow_type(t, i + 2, tclose)) continue;
      if (tclose + 1 >= t.size() || !(t[tclose + 1].kind == Tok::kPunct &&
                                      t[tclose + 1].text == "("))
        continue;
      const std::size_t aclose = match_forward(t, tclose + 1);
      if (aclose >= t.size()) continue;
      for (std::size_t j = tclose + 2; j < aclose; ++j) {
        if (t[j].kind == Tok::kIdent && credit_ident(t[j].text)) {
          ctx.report(t[i].line, "integer-credit",
                     "narrowing cast of credit quantity '" + t[j].text +
                         "' discards range; credit stays __int128/int64 "
                         "end to end");
          break;
        }
      }
    }
  }
}

}  // namespace asman_lint

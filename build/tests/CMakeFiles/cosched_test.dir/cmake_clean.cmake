file(REMOVE_RECURSE
  "CMakeFiles/cosched_test.dir/cosched_test.cpp.o"
  "CMakeFiles/cosched_test.dir/cosched_test.cpp.o.d"
  "cosched_test"
  "cosched_test.pdb"
  "cosched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

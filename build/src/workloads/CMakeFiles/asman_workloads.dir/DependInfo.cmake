
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernbench.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/kernbench.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/kernbench.cpp.o.d"
  "/root/repo/src/workloads/npb.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/npb.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/npb.cpp.o.d"
  "/root/repo/src/workloads/phase_model.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/phase_model.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/phase_model.cpp.o.d"
  "/root/repo/src/workloads/speccpu.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/speccpu.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/speccpu.cpp.o.d"
  "/root/repo/src/workloads/specjbb.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/specjbb.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/specjbb.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/asman_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/asman_workloads.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/asman_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/asman_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/asman_vmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Chaos demo: the fault-injection subsystem end to end, in one run.
//
// Runs the chaos workload (idle Dom0 + a 4-VCPU gang + a CPU hog, plus
// optional extra hogs via --vms, on a 4-PCPU host) under ASMan with the
// chosen fault class armed — by default every class at once: a lossy IPI
// bus, tick jitter, a PCPU hotplug cycle, a Monitoring Module that goes
// silent, VCRD flapping and corrupt hypercalls, plus one hung and one
// crashed VCPU — then prints what was injected and how the scheduler
// degraded gracefully instead of deadlocking or asserting.
//
//   $ ./chaos_demo [--class=NAME] [--vms=N] [--seed=N] [--list]
#include <cstdio>

#include "demo_cli.h"
#include "experiments/chaos.h"
#include "experiments/tables.h"

using namespace asman;

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  const std::string usage = examples::demo_usage(
      "chaos_demo", "fault class to arm (default: everything)",
      "total VMs on the host, N >= 3 (default: 3)");
  examples::DemoOptions opt;
  if (!examples::parse_demo_args(argc, argv, opt, usage.c_str())) return 2;
  if (opt.list) {
    examples::print_chaos_classes();
    return 0;
  }
  ex::ChaosClass cls = ex::ChaosClass::kEverything;
  if (!opt.chaos.empty() && !examples::lookup_chaos_class(opt.chaos, cls)) {
    std::fprintf(stderr, "unknown chaos class '%s'\n", opt.chaos.c_str());
    examples::print_chaos_classes();
    return 2;
  }
  const std::uint32_t n_vms = opt.vms == 0 ? 3 : opt.vms;

  ex::Scenario sc = ex::chaos_scenario(core::SchedulerKind::kAsman, cls,
                                       opt.seed, n_vms);
  sc.audit = true;  // run with the runtime invariant auditor attached
  const ex::RunResult r = ex::run_scenario(sc);

  std::printf("chaos run: ASMan, %s, %u VMs, seed %llu, %0.2f simulated "
              "seconds\n\n",
              ex::to_string(cls), n_vms,
              static_cast<unsigned long long>(opt.seed), r.elapsed_seconds);

  ex::TextTable injected({"injected fault", "count"});
  injected.add_row({"IPIs dropped", std::to_string(r.ipi_dropped)});
  injected.add_row({"IPIs delayed", std::to_string(r.ipi_delayed)});
  injected.add_row({"IPIs duplicated", std::to_string(r.ipi_duplicated)});
  injected.add_row({"VCRD flaps", std::to_string(r.injected_flaps)});
  injected.add_row({"corrupt hypercalls",
                    std::to_string(r.injected_corrupt_ops)});
  injected.add_row({"silenced VCRD reports",
                    std::to_string(r.silenced_reports)});
  injected.add_row({"PCPU offline events",
                    std::to_string(r.pcpu_offline_events)});
  std::printf("%s\n", injected.str().c_str());

  ex::TextTable degraded({"graceful degradation", "count"});
  degraded.add_row({"IPI retries", std::to_string(r.ipi_retries)});
  degraded.add_row({"gang starts abandoned",
                    std::to_string(r.gang_ipi_aborts)});
  degraded.add_row({"co-stop watchdog fires",
                    std::to_string(r.gang_watchdog_fires)});
  degraded.add_row({"VMs demoted to stock credit",
                    std::to_string(r.vcrd_demotions)});
  degraded.add_row({"stale VCRDs dropped (TTL)",
                    std::to_string(r.stale_vcrd_drops)});
  degraded.add_row({"hypercalls rejected",
                    std::to_string(r.hypercall_rejects)});
  degraded.add_row({"kicks to crashed VCPUs ignored",
                    std::to_string(r.ignored_kicks)});
  degraded.add_row({"VCPUs evacuated off dead PCPUs",
                    std::to_string(r.evacuated_vcpus)});
  std::printf("%s\n", degraded.str().c_str());

  ex::TextTable vms({"VM", "online rate", "lock acquisitions", "demotions",
                     "degraded at end"});
  for (const ex::VmResult& v : r.vms)
    vms.add_row({v.name, ex::fmt_pct(v.observed_online_rate),
                 std::to_string(v.stats.spin_acquisitions),
                 std::to_string(v.demotions), v.degraded ? "yes" : "no"});
  std::printf("%s\n", vms.str().c_str());

  if (r.audit_checks > 0)
    std::printf("auditor: %llu checks, %llu violation(s)\n%s",
                static_cast<unsigned long long>(r.audit_checks),
                static_cast<unsigned long long>(r.audit_violations),
                r.audit_violations > 0 ? r.audit_summary.c_str() : "");

  if (cls == ex::ChaosClass::kEverything)
    std::printf(
        "\nThe run reaches its horizon with zero invariant violations: "
        "lost\n"
        "IPIs are retried then abandoned, half-arrived gangs are released "
        "by\n"
        "the co-stop watchdog, the flapping guest is demoted to stock "
        "credit\n"
        "treatment (and lifted after a quiet backoff), stale HIGH VCRDs "
        "age\n"
        "out, and the offlined PCPU's VCPUs migrate with credit intact.\n");
  return 0;
}
